// Logically centralized, physically sharded SDN controller (§3.3.1).
//
// Maintains the (VNI, virtual GID) -> physical GID mapping table. vBond
// registers/updates entries whenever a vEth IP (and therefore the vGID)
// changes; RConnrename queries it when a connection is established. The
// tenant VNI disambiguates identical virtual IPs across tenants.
//
// Each record costs 35 B (vGID 16 B + VNI 3 B + pGID 16 B) — the paper's
// argument that a 10k-peer cache fits in ~0.33 MB of DRAM; record_bytes()
// exposes that arithmetic for the ablation bench.
//
// Sharding (DESIGN.md §12): the directory is hash-partitioned over
// `num_shards` shards. Each shard owns its slice of the table, a FIFO
// query service queue with a per-key service budget (the controller-side
// processing cost; 0 models an infinitely fast server, the pre-sharding
// behavior), and its own reachability flag — so an outage, and the
// degraded-mode semantics it triggers in host caches, is scoped to one
// partition instead of the whole directory. `num_shards == 1` with zero
// service time is exactly the old flat controller.
//
// Fault model: a shard (or the whole controller via set_reachable) can be
// marked unreachable for a window. While down, queries to that shard burn
// the RTT as a detection timeout and report kUnavailable, and push/
// invalidate broadcasts touching its keys are buffered; recovery flushes
// the buffered broadcasts in their original global order — the
// control-plane database itself stays authoritative throughout.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/addr.h"
#include "sim/event_loop.h"
#include "sim/flat_map.h"
#include "sim/service_queue.h"
#include "sim/task.h"

namespace sdn {

struct VirtKey {
  std::uint32_t vni = 0;
  net::Gid vgid;

  bool operator==(const VirtKey&) const = default;
};

struct VirtKeyHash {
  std::size_t operator()(const VirtKey& k) const noexcept {
    // Boost-style hash_combine: the multiply+shift mix keeps the combine
    // asymmetric and spreads entropy across all bits. (A plain XOR is
    // symmetric — hash(a)^hash(b) == hash(b)^hash(a) — and collapses keys
    // whose per-field hashes differ only in low bytes.)
    std::size_t h = std::hash<std::uint32_t>{}(k.vni);
    const std::size_t g = std::hash<net::Gid>{}(k.vgid);
    h ^= g + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
  }
};

inline constexpr std::size_t kRecordBytes = 16 + 3 + 16;  // vGID + VNI + pGID

struct ControllerConfig {
  // Round trip from a host to the shard's query service (also the
  // detection timeout while the shard is down).
  sim::Time query_rtt = sim::microseconds(100);
  // Hash partitions of the (VNI, vGID) directory. 1 = the flat controller.
  std::size_t num_shards = 1;
  // Server-side occupancy per queried key at a shard's FIFO query service.
  // 0 = infinitely fast service (pure RTT, the pre-sharding cost model);
  // > 0 makes shard queues contend, which is what the scale harness and
  // the shard ablation measure.
  sim::Time query_service = 0;
};

class Controller {
 public:
  explicit Controller(sim::EventLoop& loop,
                      sim::Time query_rtt = sim::microseconds(100))
      : Controller(loop, ControllerConfig{query_rtt}) {}
  Controller(sim::EventLoop& loop, ControllerConfig config);
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  // vBond side: called on vGID creation/update.
  void register_vgid(std::uint32_t vni, net::Gid vgid, net::Gid pgid);
  void unregister_vgid(std::uint32_t vni, net::Gid vgid);

  // Instantaneous lookup (no modeled latency; used by push-down paths).
  std::optional<net::Gid> lookup(std::uint32_t vni, net::Gid vgid) const;

  // Remote query as RConnrename performs it: charges the shard's service
  // queue (when a service budget is configured) plus the controller RTT.
  sim::Task<std::optional<net::Gid>> query(std::uint32_t vni, net::Gid vgid);

  // Like query(), but distinguishes "the key is absent" from "the
  // controller did not answer". When the key's shard is unreachable, the
  // RTT is still charged — it models the caller's detection timeout.
  struct QueryReply {
    bool unreachable = false;
    std::optional<net::Gid> pgid;
  };
  sim::Task<QueryReply> query_ex(std::uint32_t vni, net::Gid vgid);

  // Batched query (HostAgent tier): all `keys` MUST hash to `shard`. One
  // service-queue pass (keys.size() service budgets back to back) and one
  // RTT answer the whole batch — the amortization the per-host agents buy.
  sim::Task<std::vector<QueryReply>> query_batch(std::size_t shard,
                                                 std::vector<VirtKey> keys);

  // ---- shard geometry ----
  std::size_t num_shards() const { return shards_.size(); }
  std::size_t shard_of(std::uint32_t vni, net::Gid vgid) const {
    return VirtKeyHash{}(VirtKey{vni, vgid}) % shards_.size();
  }

  // ---- fault plane: reachability windows ----
  // Whole-controller switch (the PR-2 fault plane): flips every shard.
  // Coming back up flushes all broadcasts buffered while down, in their
  // original global order, so caches converge to an outage-free run.
  void set_reachable(bool reachable);
  // Scoped to one partition: only callers whose keys hash here see the
  // outage; other shards keep serving fresh answers.
  void set_shard_reachable(std::size_t shard, bool reachable);
  bool reachable() const;  // true iff every shard is reachable
  bool shard_reachable(std::size_t shard) const {
    return shards_.at(shard)->reachable;
  }
  bool reachable_for(std::uint32_t vni, net::Gid vgid) const {
    return shards_[shard_of(vni, vgid)]->reachable;
  }
  std::uint64_t unreachable_queries() const;

  // Subscriptions return a token; subscribers whose lifetime is shorter
  // than the controller's MUST unsubscribe in their destructor (vBond
  // teardown broadcasts invalidations, so a dangling callback would fire
  // into freed memory during shutdown).
  using SubId = std::uint64_t;

  // Proactive push-down (§4.2.3: "the controller can push down the
  // mappings in advance"): streams every entry of `vni` to the subscriber.
  using PushFn = std::function<void(std::uint32_t, net::Gid, net::Gid)>;
  SubId subscribe(PushFn fn) {
    subscribers_.emplace_back(next_sub_, std::move(fn));
    return next_sub_++;
  }
  void unsubscribe(SubId id) {
    std::erase_if(subscribers_, [id](const auto& s) { return s.first == id; });
  }
  void push_down(std::uint32_t vni) const;

  // Invalidation channel: unregister_vgid() broadcasts the dead key so
  // host-local caches stop serving the stale pGID (the complement of the
  // push-down channel — without it a dead mapping lives in every cache
  // forever).
  using InvalidateFn = std::function<void(std::uint32_t, net::Gid)>;
  SubId subscribe_invalidate(InvalidateFn fn) {
    invalidate_subscribers_.emplace_back(next_sub_, std::move(fn));
    return next_sub_++;
  }
  void unsubscribe_invalidate(SubId id) {
    std::erase_if(invalidate_subscribers_,
                  [id](const auto& s) { return s.first == id; });
  }

  std::size_t table_size() const;
  std::size_t table_bytes() const { return table_size() * kRecordBytes; }
  std::uint64_t queries_served() const;
  sim::Time query_rtt() const { return config_.query_rtt; }
  sim::Time query_service() const { return config_.query_service; }

  // ---- per-shard telemetry (the scale harness reports these) ----
  std::size_t shard_table_size(std::size_t shard) const {
    return shards_.at(shard)->table.size();
  }
  std::uint64_t shard_queries(std::size_t shard) const {
    return shards_.at(shard)->queries;
  }
  std::uint64_t shard_unreachable_queries(std::size_t shard) const {
    return shards_.at(shard)->unreachable_queries;
  }
  // Instantaneous and high-water service-queue depth (queued + in service).
  std::size_t shard_queue_depth(std::size_t shard) const {
    return shards_.at(shard)->queue.depth();
  }
  std::size_t shard_max_queue_depth(std::size_t shard) const {
    return shards_.at(shard)->max_queue_depth;
  }
  // Batched lookups answered through query_batch (subset of shard_queries).
  std::uint64_t shard_batched_queries(std::size_t shard) const {
    return shards_.at(shard)->batched_queries;
  }

  // Invariant auditing (src/check): true if any tenant currently maps this
  // GID as *virtual* — a QPC holding such a GID past RTR means RConnrename
  // failed to rewrite it.
  bool is_virtual_gid(net::Gid vgid) const;
  // Broadcasts buffered during an outage and not yet replayed; host caches
  // may legitimately diverge from the table while this is nonzero. The
  // shard-scoped count lets the coherence auditor keep checking healthy
  // partitions while one shard's broadcasts are in flight.
  std::size_t pending_broadcast_count() const {
    return pending_broadcasts_.size();
  }
  std::size_t shard_pending_broadcasts(std::size_t shard) const;

 private:
  struct Shard {
    explicit Shard(sim::EventLoop& loop) : queue(loop) {}
    sim::FlatMap<VirtKey, net::Gid, VirtKeyHash> table;
    sim::ServiceQueue queue;
    bool reachable = true;
    std::uint64_t queries = 0;
    std::uint64_t batched_queries = 0;
    std::uint64_t unreachable_queries = 0;
    std::size_t max_queue_depth = 0;
  };
  // A broadcast buffered while its shard was down. The buffer is one
  // global chronological list (not per shard) so whole-controller recovery
  // replays pushes and invalidations in exactly the order they happened —
  // the property sweep holds the sharded controller to the single-shard
  // reference's broadcast sequence.
  struct PendingBroadcast {
    std::size_t shard;
    std::function<void()> fn;
  };

  Shard& shard_for(std::uint32_t vni, net::Gid vgid) {
    return *shards_[shard_of(vni, vgid)];
  }
  // Charges the shard's FIFO service queue (if a budget is configured)
  // and then the RTT; records the high-water queue depth.
  sim::Task<void> charge_query_path(Shard& s, std::size_t keys);
  void broadcast_push(std::uint32_t vni, net::Gid vgid, net::Gid pgid);
  void broadcast_invalidate(std::uint32_t vni, net::Gid vgid);

  sim::EventLoop& loop_;
  ControllerConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::pair<SubId, PushFn>> subscribers_;
  std::vector<std::pair<SubId, InvalidateFn>> invalidate_subscribers_;
  SubId next_sub_ = 1;
  // Broadcasts that happened while their shard was unreachable, replayed
  // (per shard, chronologically) on recovery.
  std::vector<PendingBroadcast> pending_broadcasts_;
};

// Host-local cache in front of the controller (§3.3.1): first query for a
// peer misses and pays the controller RTT; subsequent ones hit in a few
// microseconds. In the common case a record never changes after insertion,
// so hits always stay hits.
//
// resolve() is *single-flight*: concurrent misses for the same (VNI, vGID)
// coalesce onto one in-flight controller query, so a 100-QP fan-in to a
// brand-new peer pays one controller RTT, not 100. Unresolvable keys are
// negatively cached for a bounded TTL so a misconfigured peer cannot turn
// every connection attempt into a controller round trip.
//
// The cache self-subscribes to the controller's channels: a register
// broadcast purges any negative verdict for that key (a re-registered peer
// must not stay unresolvable until TTL expiry) and refreshes an
// already-cached entry; an invalidate broadcast evicts. Pre-warm *inserts*
// remain the owner's choice — the backend wires push -> insert explicitly.
//
// Degraded mode: when the key's shard is unreachable, a cached entry whose
// last confirmation is younger than the staleness bound is still served
// (kOkDegraded, counted per shard) — established peers keep connecting
// through an outage — while entries past the bound and uncached keys
// report kUnavailable so callers fail fast instead of hanging. With a
// sharded controller the degradation is scoped: only keys hashing to the
// downed partition degrade; the rest of the cache keeps serving kOk.
class MappingCache {
 public:
  enum class ResolveStatus : std::uint8_t {
    kOk,          // fresh answer (cache hit or controller round trip)
    kOkDegraded,  // key's shard down; served stale-but-bounded from cache
    kNotFound,    // controller authoritatively says: no such key
    kUnavailable, // shard down and no fresh-enough cached answer
  };
  struct Resolution {
    ResolveStatus status = ResolveStatus::kUnavailable;
    std::optional<net::Gid> pgid;

    bool ok() const {
      return status == ResolveStatus::kOk ||
             status == ResolveStatus::kOkDegraded;
    }
  };

  MappingCache(sim::EventLoop& loop, Controller& controller,
               sim::Time hit_cost = sim::microseconds(2),
               sim::Time negative_ttl = sim::milliseconds(1),
               sim::Time staleness_bound = sim::seconds(5));
  ~MappingCache();
  MappingCache(const MappingCache&) = delete;
  MappingCache& operator=(const MappingCache&) = delete;

  sim::Task<std::optional<net::Gid>> resolve(std::uint32_t vni,
                                             net::Gid vgid);
  sim::Task<Resolution> resolve_ex(std::uint32_t vni, net::Gid vgid);

  // Accepts controller push-downs (pre-warming).
  void insert(std::uint32_t vni, net::Gid vgid, net::Gid pgid);
  void invalidate(std::uint32_t vni, net::Gid vgid);

  // Miss-path override (HostAgent tier): when set, leader misses go
  // through `fn` instead of Controller::query_ex — the agent batches
  // same-shard leaders onto one controller round trip. The hook must
  // preserve query_ex semantics (terminal reply, unreachable flag set
  // only when the key's shard did not answer).
  using QueryFn =
      std::function<sim::Task<Controller::QueryReply>(std::uint32_t,
                                                      net::Gid)>;
  void set_query_fn(QueryFn fn) { query_fn_ = std::move(fn); }

  // Fault plane: consulted with the key hash before a cached entry is
  // served; returning true evicts the entry first (models expiry or
  // corruption detection). Null = off.
  void set_fault_probe(std::function<bool(std::uint64_t)> probe) {
    fault_probe_ = std::move(probe);
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  // Concurrent misses that rode another miss's in-flight controller query.
  std::uint64_t single_flight_coalesced() const { return coalesced_; }
  // Lookups answered from the bounded negative cache.
  std::uint64_t negative_hits() const { return negative_hits_; }
  // Degraded-mode serves while the key's shard was unreachable.
  std::uint64_t degraded_serves() const { return degraded_serves_; }
  // Degraded-mode serves attributable to one shard's outage — the scale
  // harness proves a partition outage degrades only its partition.
  std::uint64_t degraded_serves(std::size_t shard) const {
    return degraded_by_shard_.at(shard);
  }
  // Resolutions that found the shard down and nothing fresh enough.
  std::uint64_t unavailable_results() const { return unavailable_; }
  // Entries evicted by the fault probe.
  std::uint64_t fault_expirations() const { return fault_expirations_; }
  // Largest staleness (now - last confirmation) ever served in degraded
  // mode; the sweep asserts this stays <= staleness_bound.
  sim::Time max_served_staleness() const { return max_served_staleness_; }
  sim::Time staleness_bound() const { return staleness_bound_; }
  std::size_t size() const { return cache_.size(); }
  std::size_t bytes() const { return cache_.size() * kRecordBytes; }
  std::size_t negative_size() const { return negative_.size(); }
  static constexpr std::size_t max_negative_entries() {
    return kMaxNegativeEntries;
  }

  // Invariant auditing (src/check): streams every positive entry in sorted
  // key order — (vni, vgid, pgid, last confirmation time).
  void for_each_entry(
      const std::function<void(const VirtKey&, net::Gid, sim::Time)>& fn)
      const;

  // Test-only corruption hook: plants `pgid` for the key directly, bypassing
  // the controller-truth maintenance that insert()/on_push() perform. Used
  // to prove the coherence auditor trips on a wrong mapping.
  void corrupt_entry_for_test(std::uint32_t vni, net::Gid vgid,
                              net::Gid pgid);

 private:
  // Bound on the negative cache: it is a DoS shield, not a datastore.
  static constexpr std::size_t kMaxNegativeEntries = 1024;

  struct Entry {
    net::Gid pgid;
    sim::Time confirmed_at = 0;  // when the controller last vouched for it
  };

  void on_push(std::uint32_t vni, net::Gid vgid, net::Gid pgid);

  sim::EventLoop& loop_;
  Controller& controller_;
  sim::Time hit_cost_;
  sim::Time negative_ttl_;
  sim::Time staleness_bound_;
  Controller::SubId push_sub_ = 0;
  Controller::SubId invalidate_sub_ = 0;
  QueryFn query_fn_;
  std::function<bool(std::uint64_t)> fault_probe_;
  sim::FlatMap<VirtKey, Entry, VirtKeyHash> cache_;
  // Key -> expiry time of the "known absent" verdict.
  sim::FlatMap<VirtKey, sim::Time, VirtKeyHash> negative_;
  // One leader query per key; followers await the leader's future.
  sim::FlatMap<VirtKey, sim::Future<Resolution>, VirtKeyHash> inflight_;
  // Keys invalidated while their leader query was in flight: the stale
  // result must not be installed when the leader returns.
  sim::FlatSet<VirtKey, VirtKeyHash> poisoned_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t negative_hits_ = 0;
  std::uint64_t degraded_serves_ = 0;
  std::vector<std::uint64_t> degraded_by_shard_;
  std::uint64_t unavailable_ = 0;
  std::uint64_t fault_expirations_ = 0;
  sim::Time max_served_staleness_ = 0;
};

}  // namespace sdn
