// Paravirtual command channel (virtio virtqueue).
//
// MasQ forwards *control-path* verbs from the guest frontend driver to the
// host backend driver over a virtqueue (Appendix A.1): the guest enqueues a
// command and kicks (VM-exit, ~10 us one way in the paper's testbed); the
// backend processes it and injects an interrupt back (~10 us). The ~20 us
// round trip is the entire per-verb cost MasQ adds — Table 1's "w/ virtio"
// column — and it is also why forwarding *data-path* verbs this way would
// be 101-667x slower, the rationale experiment of §3.1.
//
// Kick/interrupt coalescing: a kick is an *edge* trigger. Commands placed
// on the ring after the doorbell write but before the backend drains the
// ring ride the same descriptor batch for free — no second VM exit. The
// same holds on the way back: every completion sitting in the used ring
// when the guest's interrupt handler dispatches is reaped by that one
// handler invocation, so completions landing inside an in-flight injection
// window share a single interrupt. kicks()/interrupts() count the real
// (paid) transitions; coalesced_kicks()/coalesced_interrupts() count the
// free riders, which is how the benches prove the amortization.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/event_loop.h"
#include "sim/faults.h"
#include "sim/task.h"
#include "sim/time.h"

namespace virtio {

struct ChannelCosts {
  // Kick: guest write + VM-exit + backend wakeup.
  sim::Time guest_to_host = sim::microseconds(10);
  // Response: interrupt injection + guest handler dispatch.
  sim::Time host_to_guest = sim::microseconds(10);

  sim::Time round_trip() const { return guest_to_host + host_to_guest; }
};

// Typed request/response queue. The backend handler runs "on the host" and
// may itself await (driver calls, controller queries).
template <typename Req, typename Resp>
class Virtqueue {
 public:
  using Backend = std::function<sim::Task<Resp>(Req)>;

  Virtqueue(sim::EventLoop& loop, ChannelCosts costs, int ring_size = 256)
      : loop_(loop), costs_(costs), ring_size_(ring_size) {}

  void set_backend(Backend backend) { backend_ = std::move(backend); }

  // Frontend: submits a command and suspends until the response interrupt.
  //
  // `weight` is the number of ring descriptors the request occupies: a
  // plain command takes one; a batch container takes one per carried
  // command, so ring backpressure cannot be defeated by batching.
  sim::Task<Resp> call(Req req, int weight = 1) {
    if (!backend_) throw std::logic_error("virtqueue: no backend attached");
    if (weight < 1 || weight > ring_size_) {
      throw std::invalid_argument(
          "virtqueue: request weight exceeds ring size");
    }
    // Ring backpressure: wait until enough descriptor slots are free.
    while (in_flight_ + weight > ring_size_) {
      sim::Promise<bool> p(loop_);
      auto f = p.get_future();
      slot_waiters_.push_back(std::move(p));
      co_await f;
    }
    acquire_slots(weight);
    co_await kick_transit();
    Resp resp;
    try {
      resp = co_await backend_(std::move(req));
    } catch (...) {
      release_slots(weight);
      throw;
    }
    co_await interrupt_transit();
    release_slots(weight);
    co_return resp;
  }

  // Fault plane: consulted once per guest->host transit with the caller's
  // fault key; the returned decision can drop the descriptor (no response
  // ever arrives), delay it, or duplicate it (the backend runs twice; the
  // second response is discarded — idempotent command handling is what
  // makes that safe). Null = faults off; call() is never affected.
  void set_transit_faults(
      std::function<sim::FaultDecision(std::uint64_t)> faults) {
    transit_faults_ = std::move(faults);
  }

  struct CallOutcome {
    bool timed_out = false;
    Resp resp{};  // valid only when !timed_out
  };

  // Like call(), but gives up at absolute time `deadline` — the coroutine
  // resumes with timed_out instead of hanging on a dropped descriptor. The
  // command may still execute (and complete late) on the host; retries
  // must therefore be idempotent. `fault_key` identifies the request in
  // the fault plane's replay log (the frontend passes the command id).
  sim::Task<CallOutcome> call_deadline(Req req, int weight,
                                       sim::Time deadline,
                                       std::uint64_t fault_key) {
    if (!backend_) throw std::logic_error("virtqueue: no backend attached");
    if (weight < 1 || weight > ring_size_) {
      throw std::invalid_argument(
          "virtqueue: request weight exceeds ring size");
    }
    auto w = std::make_shared<Waiter>(loop_);
    auto fut = w->promise.get_future();
    loop_.spawn(run_call(std::move(req), weight, fault_key, w));
    // The timer holds only a weak reference: the caller keeps the waiter
    // alive until settle, so an expired pointer means the call already
    // completed — and a settled call does not retain its response in the
    // loop until the absolute deadline fires.
    loop_.schedule_at(deadline, [wk = std::weak_ptr<Waiter>(w)] {
      auto w = wk.lock();
      if (w && !w->settled) {
        w->settled = true;
        w->promise.set_value(false);
      }
    });
    const bool completed = co_await fut;
    CallOutcome out;
    out.timed_out = !completed;
    if (completed) out.resp = std::move(w->resp);
    co_return out;
  }

  const ChannelCosts& costs() const { return costs_; }
  int ring_size() const { return ring_size_; }
  std::uint64_t kicks() const { return kicks_; }
  std::uint64_t interrupts() const { return interrupts_; }
  std::uint64_t coalesced_kicks() const { return coalesced_kicks_; }
  std::uint64_t coalesced_interrupts() const { return coalesced_interrupts_; }
  int in_flight() const { return in_flight_; }

  // Ring-accounting introspection (src/check auditor): every descriptor
  // slot ever acquired/released. The steady-state invariant is
  // acquired - released == in_flight; at quiescence in_flight == 0 even
  // across fault-plane drop/dup injections.
  std::uint64_t slots_acquired() const { return slots_acquired_; }
  std::uint64_t slots_released() const { return slots_released_; }
  std::size_t waiting_callers() const { return slot_waiters_.size(); }

  // Test-only corruption hook: books one phantom acquired slot so the ring
  // accounting no longer balances — used to prove the ring auditor trips.
  void corrupt_ring_accounting_for_test() { ++slots_acquired_; }

 private:
  // Shared between the caller, the transit worker and the deadline timer:
  // whichever settles first wins, the others see `settled` and stand down.
  struct Waiter {
    explicit Waiter(sim::EventLoop& loop) : promise(loop) {}
    bool settled = false;
    Resp resp{};
    sim::Promise<bool> promise;
  };

  // Detached worker carrying one deadline call through the ring. Runs as a
  // loop root task so a timed-out caller can resume (and even destruct the
  // enclosing scope's locals) while the descriptor is still in flight.
  sim::Task<void> run_call(Req req, int weight, std::uint64_t fault_key,
                           std::shared_ptr<Waiter> w) {
    while (in_flight_ + weight > ring_size_) {
      sim::Promise<bool> p(loop_);
      auto f = p.get_future();
      slot_waiters_.push_back(std::move(p));
      co_await f;
    }
    acquire_slots(weight);
    sim::FaultDecision fault;
    if (transit_faults_) fault = transit_faults_(fault_key);
    try {
      if (fault.action == sim::FaultAction::kDrop) {
        // Lost descriptor: the kick still happens (the guest cannot know),
        // the slots ride the transit, then the request silently vanishes —
        // only the caller's deadline can resolve this.
        co_await kick_transit();
        release_slots(weight);
        co_return;
      }
      co_await kick_transit();
      if (fault.action == sim::FaultAction::kDelay) {
        co_await sim::delay(loop_, fault.delay);
      }
      Resp resp;
      if (fault.action == sim::FaultAction::kDuplicate) {
        // The descriptor is seen twice by the backend; the first response
        // wins and the duplicate's is discarded.
        resp = co_await backend_(req);
        (void)co_await backend_(std::move(req));
      } else {
        resp = co_await backend_(std::move(req));
      }
      co_await interrupt_transit();
      release_slots(weight);
      if (!w->settled) {
        w->settled = true;
        w->resp = std::move(resp);
        w->promise.set_value(true);
      }
    } catch (...) {
      release_slots(weight);
      if (!w->settled) {
        w->settled = true;
        w->promise.set_exception(std::current_exception());
      }
      // A late exception (caller already timed out) is swallowed: there is
      // nobody left to observe it.
    }
  }

  // Guest -> host transit. A command submitted while an earlier kick is
  // still in flight (i.e. before the backend's ring drain at
  // kick_arrival_) joins that batch: it arrives with the batch and pays no
  // second VM exit. Otherwise it rings the doorbell itself.
  sim::Task<void> kick_transit() {
    const sim::Time now = loop_.now();
    if (now < kick_arrival_) {
      ++coalesced_kicks_;
      co_await sim::delay(loop_, kick_arrival_ - now);
    } else {
      ++kicks_;
      kick_arrival_ = now + costs_.guest_to_host;
      co_await sim::delay(loop_, costs_.guest_to_host);
    }
  }

  // Host -> guest transit. A completion produced while an interrupt
  // injection is still in flight (before the guest handler dispatch at
  // intr_dispatch_) is already in the used ring when the handler runs and
  // is reaped by it — one interrupt for the whole dispatch window.
  sim::Task<void> interrupt_transit() {
    const sim::Time now = loop_.now();
    if (now < intr_dispatch_) {
      ++coalesced_interrupts_;
      co_await sim::delay(loop_, intr_dispatch_ - now);
    } else {
      ++interrupts_;
      intr_dispatch_ = now + costs_.host_to_guest;
      co_await sim::delay(loop_, costs_.host_to_guest);
    }
  }

  void acquire_slots(int weight) {
    in_flight_ += weight;
    slots_acquired_ += static_cast<std::uint64_t>(weight);
  }

  void release_slots(int weight) {
    in_flight_ -= weight;
    slots_released_ += static_cast<std::uint64_t>(weight);
    // Wake waiters FIFO; each re-checks the backpressure condition and
    // re-queues if its weight still does not fit (keeps big batches from
    // being starved by a stream of small commands).
    while (!slot_waiters_.empty() && in_flight_ < ring_size_) {
      auto p = std::move(slot_waiters_.front());
      slot_waiters_.pop_front();
      p.set_value(true);
    }
  }

  sim::EventLoop& loop_;
  ChannelCosts costs_;
  int ring_size_;
  Backend backend_;
  std::function<sim::FaultDecision(std::uint64_t)> transit_faults_;
  int in_flight_ = 0;
  std::uint64_t kicks_ = 0;
  std::uint64_t interrupts_ = 0;
  std::uint64_t coalesced_kicks_ = 0;
  std::uint64_t coalesced_interrupts_ = 0;
  std::uint64_t slots_acquired_ = 0;
  std::uint64_t slots_released_ = 0;
  sim::Time kick_arrival_ = -1;   // when the in-flight kick's batch lands
  sim::Time intr_dispatch_ = -1;  // when the in-flight interrupt dispatches
  std::deque<sim::Promise<bool>> slot_waiters_;
};

}  // namespace virtio
