// Paravirtual command channel (virtio virtqueue).
//
// MasQ forwards *control-path* verbs from the guest frontend driver to the
// host backend driver over a virtqueue (Appendix A.1): the guest enqueues a
// command and kicks (VM-exit, ~10 us one way in the paper's testbed); the
// backend processes it and injects an interrupt back (~10 us). The ~20 us
// round trip is the entire per-verb cost MasQ adds — Table 1's "w/ virtio"
// column — and it is also why forwarding *data-path* verbs this way would
// be 101-667x slower, the rationale experiment of §3.1.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <utility>

#include "sim/event_loop.h"
#include "sim/task.h"
#include "sim/time.h"

namespace virtio {

struct ChannelCosts {
  // Kick: guest write + VM-exit + backend wakeup.
  sim::Time guest_to_host = sim::microseconds(10);
  // Response: interrupt injection + guest handler dispatch.
  sim::Time host_to_guest = sim::microseconds(10);

  sim::Time round_trip() const { return guest_to_host + host_to_guest; }
};

// Typed request/response queue. The backend handler runs "on the host" and
// may itself await (driver calls, controller queries).
template <typename Req, typename Resp>
class Virtqueue {
 public:
  using Backend = std::function<sim::Task<Resp>(Req)>;

  Virtqueue(sim::EventLoop& loop, ChannelCosts costs, int ring_size = 256)
      : loop_(loop), costs_(costs), ring_size_(ring_size) {}

  void set_backend(Backend backend) { backend_ = std::move(backend); }

  // Frontend: submits a command and suspends until the response interrupt.
  sim::Task<Resp> call(Req req) {
    if (!backend_) throw std::logic_error("virtqueue: no backend attached");
    // Ring backpressure: wait for a descriptor slot.
    while (in_flight_ >= ring_size_) {
      sim::Promise<bool> p(loop_);
      auto f = p.get_future();
      slot_waiters_.push_back(std::move(p));
      co_await f;
    }
    ++in_flight_;
    ++kicks_;
    co_await sim::delay(loop_, costs_.guest_to_host);
    Resp resp;
    try {
      resp = co_await backend_(std::move(req));
    } catch (...) {
      release_slot();
      throw;
    }
    ++interrupts_;
    co_await sim::delay(loop_, costs_.host_to_guest);
    release_slot();
    co_return resp;
  }

  const ChannelCosts& costs() const { return costs_; }
  std::uint64_t kicks() const { return kicks_; }
  std::uint64_t interrupts() const { return interrupts_; }
  int in_flight() const { return in_flight_; }

 private:
  void release_slot() {
    --in_flight_;
    if (!slot_waiters_.empty()) {
      auto p = std::move(slot_waiters_.front());
      slot_waiters_.pop_front();
      p.set_value(true);
    }
  }

  sim::EventLoop& loop_;
  ChannelCosts costs_;
  int ring_size_;
  Backend backend_;
  int in_flight_ = 0;
  std::uint64_t kicks_ = 0;
  std::uint64_t interrupts_ = 0;
  std::deque<sim::Promise<bool>> slot_waiters_;
};

}  // namespace virtio
