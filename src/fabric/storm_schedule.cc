#include "fabric/storm_schedule.h"

#include "sim/rng.h"

namespace fabric::storm {

StormSchedule StormSchedule::draw(const ScaleConfig& cfg) {
  StormSchedule s;
  sim::Rng rng(cfg.seed);
  const std::size_t vms = total_vms(cfg);
  const sim::Time horizon =
      static_cast<sim::Time>(cfg.waves) * cfg.wave_gap + cfg.spread;
  auto same_tenant_peer = [&](std::size_t vm) {
    // Peers are same-tenant by construction: tenant t owns VMs
    // {t, t + T, t + 2T, ...}. Draw until the peer isn't the VM itself
    // (a tenant with one VM connects to itself; fine for the cache).
    const std::size_t tenant_pop = vms / cfg.tenants;
    std::size_t peer = vm;
    if (tenant_pop > 1) {
      do {
        peer = tenant_of(cfg, vm) + cfg.tenants * rng.next_below(tenant_pop);
      } while (peer == vm);
    }
    return peer;
  };
  // Draw order is load-bearing: per connection the jitter comes FIRST,
  // then the peer draws — changing it changes every downstream event time
  // for a given seed.
  s.wave_conns.reserve(cfg.waves * vms * cfg.conns_per_vm);
  for (std::size_t w = 0; w < cfg.waves; ++w) {
    const sim::Time wave_start = static_cast<sim::Time>(w) * cfg.wave_gap;
    for (std::size_t vm = 0; vm < vms; ++vm) {
      for (std::size_t c = 0; c < cfg.conns_per_vm; ++c) {
        const sim::Time start =
            wave_start + static_cast<sim::Time>(rng.next_below(
                             static_cast<std::uint64_t>(cfg.spread) + 1));
        s.wave_conns.push_back(Conn{vm, same_tenant_peer(vm), start});
      }
    }
  }
  for (std::size_t i = 0; i < cfg.ip_changes; ++i) {
    const std::size_t vm = rng.next_below(vms);
    const sim::Time when = static_cast<sim::Time>(
        rng.next_below(static_cast<std::uint64_t>(horizon)));
    s.ip_changes.push_back(IpChange{vm, when});
  }
  // A security-rule reset makes every VM of one tenant re-validate a peer
  // connection: a surge of resolves against warm caches.
  for (std::size_t i = 0; i < cfg.rule_resets; ++i) {
    const std::size_t tenant = rng.next_below(cfg.tenants);
    const sim::Time when = static_cast<sim::Time>(
        rng.next_below(static_cast<std::uint64_t>(horizon)));
    for (std::size_t vm = tenant; vm < vms; vm += cfg.tenants) {
      s.reset_conns.push_back(Conn{vm, same_tenant_peer(vm), when});
    }
  }
  return s;
}

}  // namespace fabric::storm
