// Storm topology + pre-drawn schedule, shared by both scale-storm engines
// (DESIGN.md §12–§13).
//
// The single-loop engine (scale.cc) and the partition-parallel engine
// (scale_partition.cc) must describe the *same* storm: same VM→host/tenant
// geometry, same vGID arithmetic, and — critically — the same seeded
// random draws in the same order. Everything here is a pure function of
// (config, seed); neither engine consumes randomness after its loops
// start.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fabric/scale.h"
#include "net/addr.h"

namespace fabric::storm {

// ---- topology (pure functions of the config) ----
inline std::size_t total_vms(const ScaleConfig& cfg) {
  return cfg.hosts * cfg.vms_per_host;
}
inline std::size_t host_of(const ScaleConfig& cfg, std::size_t vm) {
  return vm / cfg.vms_per_host;
}
inline std::size_t tenant_of(const ScaleConfig& cfg, std::size_t vm) {
  return vm % cfg.tenants;
}
inline std::uint32_t vni_of(const ScaleConfig& cfg, std::size_t vm) {
  return 100 + static_cast<std::uint32_t>(tenant_of(cfg, vm));
}
// vGID value space: low 14 bits the VM id, upper bits the generation — an
// IP change mints a vGID never seen before.
inline net::Gid gid_of(std::size_t vm, std::uint32_t generation) {
  return net::Gid::from_ipv4(
      net::Ipv4Addr{static_cast<std::uint32_t>(vm) | (generation << 14)});
}
inline net::Gid pgid_of_host(std::size_t h) {
  return net::Gid::from_ipv4(
      net::Ipv4Addr{0x0A000000u + static_cast<std::uint32_t>(h) + 1});
}
// Partition placement (partition engine): partitions are indexed like
// shards (cfg.shards of them, regardless of worker threads) and a host's
// VMs all live in one partition, so a VM's cache/agent state is local.
inline std::size_t partition_of_host(const ScaleConfig& cfg, std::size_t h) {
  return h % cfg.shards;
}

// ---- warm-path model (DESIGN.md §14), shared by both engines ----
// Analytic state only — no timer events — so the model is a pure function
// of each connect's virtual start time and both engines stay byte-equal.
// Token bucket: pre-staged QP/CQ ladders per VM. Parked pair: an RTS QP
// kept warm toward one peer generation until its idle TTL.
struct WarmTokens {
  std::uint64_t tokens = 0;
  sim::Time last = 0;  // restock clock (advanced by whole refill periods)
};
struct ParkedConn {
  std::uint32_t gen = 0;  // peer vGID generation the QP is bound to
  sim::Time expires = 0;  // lazy idle-timeout reclaim deadline
};

// Lazy restock + take: tokens refill one per warm_refill of elapsed
// virtual time — the background refill with no events of its own, so
// enabling warm changes latencies but never injects extra loop events.
inline bool take_warm_token(const ScaleConfig& cfg, WarmTokens& w,
                            sim::Time now) {
  if (w.tokens >= cfg.warm_pool) {
    w.last = now;  // full pool: the refill clock idles
  } else if (cfg.warm_refill > 0) {
    const std::uint64_t earned =
        static_cast<std::uint64_t>((now - w.last) / cfg.warm_refill);
    const std::uint64_t add =
        std::min<std::uint64_t>(earned, cfg.warm_pool - w.tokens);
    w.tokens += add;
    w.last += cfg.warm_refill * static_cast<sim::Time>(add);
    if (w.tokens >= cfg.warm_pool) w.last = now;
  }
  if (w.tokens == 0) return false;
  --w.tokens;
  return true;
}

// ---- the pre-drawn schedule ----
// Drawn up front from one seeded stream in one fixed order (wave
// connections, then IP changes, then rule resets); the vectors are in
// legacy spawn order, which is also each engine's tie-break order for
// same-timestamp events.
struct StormSchedule {
  struct Conn {
    std::size_t src;
    std::size_t dst;
    sim::Time start;
  };
  struct IpChange {
    std::size_t vm;
    sim::Time when;
  };

  std::vector<Conn> wave_conns;
  std::vector<IpChange> ip_changes;
  std::vector<Conn> reset_conns;

  static StormSchedule draw(const ScaleConfig& cfg);
};

}  // namespace fabric::storm
