#include "fabric/traffic.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "net/dcqcn.h"
#include "net/topology.h"
#include "sdn/placement.h"
#include "sim/event_loop.h"
#include "sim/flat_map.h"
#include "sim/stats.h"

namespace fabric {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// One schedule connection turned into a data flow (resolved before the
// loop starts; nothing below consumes randomness).
struct FlowSpec {
  std::size_t src_host = 0;
  std::size_t dst_host = 0;
  std::size_t tenant = 0;
  std::uint64_t bytes = 0;
  sim::Time start = 0;
};

// Everything the in-flight callbacks touch, owned for the whole run.
struct TrafficDriver {
  sim::EventLoop loop;
  net::FluidNet net{loop};
  std::vector<net::LinkId> tx;  // per-host NIC serialization links
  std::vector<net::LinkId> rx;
  std::vector<net::LinkId> tenant_link;  // per-tenant rate limiters
  std::unique_ptr<net::FabricTopology> topo;
  std::unique_ptr<net::DcqcnController> dcqcn;
  sim::FlatMap<net::FlowId, std::size_t> flow_tenant;  // active flows
  std::vector<net::FlowId> flow_ids;  // by spec index; 0 until started
  sim::Stats fct_us;
  sim::Time last_end = 0;
  double peak_spine_util = 0;
  double peak_tenant_gbps = 0;

  // Utilization/tenant-aggregate high-water marks, sampled at every flow
  // completion (allocations only change at flow events, so completions see
  // every distinct allocation that follows one).
  void sample() {
    if (topo != nullptr) {
      const auto& fc = topo->config();
      for (std::size_t s = 0; s < fc.spines; ++s) {
        for (net::LinkId l : topo->spine_links(s)) {
          const double cap = net.link_capacity_gbps(l);
          if (cap <= 0) continue;  // outage: nothing flows, skip the ratio
          peak_spine_util =
              std::max(peak_spine_util, net.link_load_gbps(l) / cap);
        }
      }
    }
    if (!tenant_link.empty()) {
      std::vector<double> per_tenant(tenant_link.size(), 0.0);
      for (const auto& [flow, tenant] : flow_tenant) {
        per_tenant[tenant] += net.current_rate_gbps(flow);
      }
      for (double g : per_tenant) {
        peak_tenant_gbps = std::max(peak_tenant_gbps, g);
      }
    }
  }
};

}  // namespace

TrafficReport run_traffic_phase(const ScaleConfig& cfg,
                                const storm::StormSchedule& sched) {
  const TrafficConfig& tc = cfg.traffic;
  TrafficReport r;
  r.enabled = true;
  r.hosts = cfg.hosts;
  r.leaves = tc.leaves;
  r.spines = tc.spines;

  TrafficDriver d;
  d.tx.reserve(cfg.hosts);
  d.rx.reserve(cfg.hosts);
  for (std::size_t h = 0; h < cfg.hosts; ++h) {
    d.tx.push_back(d.net.add_link(tc.host_gbps, 0));
    d.rx.push_back(d.net.add_link(tc.host_gbps, 0));
  }
  if (tc.leaves > 0) {
    net::FabricConfig fc;
    fc.hosts = cfg.hosts;
    fc.leaves = tc.leaves;
    fc.spines = tc.spines;
    fc.host_gbps = tc.host_gbps;
    fc.spine_gbps = tc.spine_gbps;
    d.topo = std::make_unique<net::FabricTopology>(d.net, fc);
  }
  if (tc.tenant_gbps > 0) {
    d.tenant_link.reserve(cfg.tenants);
    for (std::size_t t = 0; t < cfg.tenants; ++t) {
      d.tenant_link.push_back(d.net.add_link(tc.tenant_gbps, 0));
    }
  }
  if (tc.dcqcn) {
    net::DcqcnParams dp;
    dp.seed = cfg.seed ^ 0xd00dfeedull;
    d.dcqcn = std::make_unique<net::DcqcnController>(d.loop, d.net, dp);
  }

  // Resolve the flow list up front: endpoints, placement remap, scenario
  // remap, sizes, ECMP spines. Pure arithmetic over the schedule.
  const std::size_t n = std::min<std::size_t>(tc.flows,
                                              sched.wave_conns.size());
  const std::size_t vms = storm::total_vms(cfg);
  std::vector<FlowSpec> specs(n);
  std::vector<std::vector<net::LinkId>> paths(n);
  std::uint64_t fold = kFnvOffset;
  sim::Time first_start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const storm::StormSchedule::Conn& c = sched.wave_conns[i];
    FlowSpec& f = specs[i];
    f.tenant = storm::tenant_of(cfg, c.src);
    f.src_host = tc.placement
                     ? sdn::leaf_affine_host(cfg.tenants, vms,
                                             cfg.vms_per_host, c.src)
                     : storm::host_of(cfg, c.src);
    f.dst_host = tc.placement
                     ? sdn::leaf_affine_host(cfg.tenants, vms,
                                             cfg.vms_per_host, c.dst)
                     : storm::host_of(cfg, c.dst);
    if (tc.pattern == "incast" && i < tc.incast_fanin) {
      f.dst_host = 0;  // the fan-in victim; the rest stay background
    }
    const bool elephant = tc.elephant_every > 0 && i % tc.elephant_every == 0;
    f.bytes = (elephant ? tc.elephant_kb : tc.flow_kb) * 1024;
    f.start = c.start;
    if (i == 0 || f.start < first_start) first_start = f.start;

    net::EcmpKey key;
    key.src_ip = static_cast<std::uint32_t>(c.src);
    key.dst_ip = static_cast<std::uint32_t>(c.dst);
    key.src_port = static_cast<std::uint16_t>(i);
    std::uint64_t spine_token = 0;  // intra-leaf / direct: no spine
    std::vector<net::LinkId>& path = paths[i];
    if (!d.tenant_link.empty()) path.push_back(d.tenant_link[f.tenant]);
    path.push_back(d.tx[f.src_host]);
    if (d.topo != nullptr && f.src_host != f.dst_host) {
      if (d.topo->leaf_of(f.src_host) != d.topo->leaf_of(f.dst_host)) {
        spine_token = 1 + d.topo->spine_for(key);
        ++r.spine_crossings;
      }
      for (net::LinkId l : d.topo->path(f.src_host, f.dst_host, key)) {
        path.push_back(l);
      }
    }
    path.push_back(d.rx[f.dst_host]);
    // ECMP placement fold: (index, spine choice) pairs, FNV-1a style.
    fold = (fold ^ i) * kFnvPrime;
    fold = (fold ^ spine_token) * kFnvPrime;
    r.total_bytes += f.bytes;
  }
  r.flows = n;
  r.ecmp_fold = fold;

  d.flow_ids.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    d.loop.schedule_at(specs[i].start, [&d, &tc, &specs, &paths, i] {
      const FlowSpec& f = specs[i];
      const net::FlowId flow = d.net.start_flow(
          paths[i], f.bytes, net::kUncapped, [&d, i, start = f.start] {
            d.fct_us.add(sim::to_us(d.loop.now() - start));
            d.last_end = std::max(d.last_end, d.loop.now());
            d.flow_tenant.erase(d.flow_ids[i]);
            d.sample();
          });
      d.flow_ids[i] = flow;
      d.flow_tenant[flow] = f.tenant;
      if (d.dcqcn != nullptr) d.dcqcn->manage(flow, tc.host_gbps);
    });
  }

  if (tc.fail_spine >= 0 && d.topo != nullptr) {
    const std::size_t spine =
        static_cast<std::size_t>(tc.fail_spine) % tc.spines;
    d.loop.schedule_at(tc.fail_from, [&d, spine] {
      for (net::LinkId l : d.topo->spine_links(spine)) {
        d.net.set_link_capacity(l, 0);
      }
    });
    d.loop.schedule_at(tc.fail_until, [&d, &tc, spine] {
      for (net::LinkId l : d.topo->spine_links(spine)) {
        d.net.set_link_capacity(l, tc.spine_gbps);
      }
    });
  }

  d.loop.run();

  if (!d.fct_us.empty()) {
    r.fct_p50_us = d.fct_us.percentile(50.0);
    r.fct_p99_us = d.fct_us.percentile(99.0);
    r.fct_max_us = d.fct_us.max();
  }
  if (d.last_end > first_start) {
    r.elapsed_ms = sim::to_ms(d.last_end - first_start);
    // bytes * 8 bits over elapsed ns is exactly Gbit/s.
    r.agg_gbps = static_cast<double>(r.total_bytes) * 8.0 /
                 static_cast<double>(d.last_end - first_start);
  }
  if (d.dcqcn != nullptr) {
    r.ecn_marks = d.dcqcn->marks_delivered();
    r.dcqcn_recoveries = d.dcqcn->recoveries();
    for (std::size_t i = 0; i < n; ++i) {
      if (d.flow_ids[i] != 0 && d.dcqcn->marks_for(d.flow_ids[i]) > 0) {
        ++r.throttled_flows;
      }
    }
  }
  r.peak_spine_util = d.peak_spine_util;
  r.peak_tenant_gbps = d.peak_tenant_gbps;
  return r;
}

}  // namespace fabric
