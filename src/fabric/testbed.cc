#include "fabric/testbed.h"

#include <cstdio>
#include <new>

#include "check/auditors.h"

namespace fabric {

const char* to_string(Candidate c) {
  switch (c) {
    case Candidate::kHostRdma: return "Host-RDMA";
    case Candidate::kSriov: return "SR-IOV";
    case Candidate::kFreeFlow: return "FreeFlow";
    case Candidate::kMasq: return "MasQ";
  }
  return "?";
}

Testbed::Testbed(sim::EventLoop& loop, TestbedConfig config)
    : loop_(loop),
      config_(std::move(config)),
      fluid_(loop),
      vnet_(loop, config_.cal.oob_oneway),
      controller_(loop,
                  sdn::ControllerConfig{
                      .query_rtt = config_.cal.controller_rtt,
                      .num_shards = config_.sdn_shards,
                      .query_service = config_.sdn_query_service,
                  }) {
  if (config_.faults.any()) {
    fault_plane_ = std::make_unique<sim::FaultPlane>(loop_, config_.faults,
                                                     config_.fault_seed);
    // SDN outage windows flip the controller's reachability; queries made
    // while down return "unreachable" after the detection timeout and the
    // host caches serve degraded (stale-but-bounded) mappings.
    fault_plane_->arm(
        [this](bool down) { controller_.set_reachable(!down); });
  }
  for (int h = 0; h < config_.num_hosts; ++h) {
    auto host = std::make_unique<hyp::Host>(
        loop_, fluid_, "server-" + std::to_string(h),
        config_.cal.host_dram_bytes);
    rnic::DeviceConfig dc;
    dc.name = "cx3-" + std::to_string(h);
    dc.ip = net::Ipv4Addr::from_octets(10, 0, 0,
                                       static_cast<std::uint8_t>(h + 1));
    dc.mac = net::MacAddr::from_u64(0x020000000000ull + h + 1);
    dc.num_vfs = config_.cal.num_vfs;
    dc.link_gbps = config_.cal.link_gbps;
    dc.link_prop_oneway = config_.cal.link_prop_oneway;
    dc.iommu = config_.candidate == Candidate::kSriov;  // VT-d passthrough
    // Disjoint per-host resource-ID spaces: a live-migrated QP keeps its
    // QPN on the destination host with no possibility of collision.
    dc.id_space = static_cast<std::uint32_t>(h);
    dc.costs = config_.cal.data_costs;
    rnic::RnicDevice& dev = host->add_rnic(dc);
    dev.attach(this);
    by_underlay_ip_[dc.ip] = &dev;
    host_of_ip_[dc.ip] = static_cast<std::size_t>(h);

    if (config_.candidate == Candidate::kMasq) {
      masq::BackendConfig bc;
      bc.map_tenants_to_pf = config_.masq_use_pf;
      bc.disable_mapping_cache = config_.masq_disable_cache;
      bc.command_overhead = config_.cal.masq_command_overhead;
      bc.driver_costs = config_.cal.driver_costs;
      bc.conntrack_costs = config_.cal.conntrack_costs;
      bc.mapping_cache_hit = config_.cal.mapping_cache_hit;
      bc.retry = config_.retry;
      bc.cache_staleness_bound = config_.cache_staleness_bound;
      bc.resolve_batch_window = config_.sdn_resolve_batch_window;
      bc.warm = config_.masq_warm;
      bc.faults = fault_plane_.get();
      backends_.push_back(std::make_unique<masq::Backend>(
          loop_, dev, controller_, vnet_, bc));
    } else if (config_.candidate == Candidate::kFreeFlow) {
      ffrs_.push_back(std::make_unique<baselines::FfRouter>(
          loop_, dev, controller_, config_.cal.freeflow_costs,
          config_.cal.driver_costs));
    }
    hosts_.push_back(std::move(host));
    vf_in_use_.push_back(0);
  }

  if (config_.topology.has_value()) {
    net::FabricConfig fc = *config_.topology;
    fc.hosts = static_cast<std::size_t>(config_.num_hosts);
    fabric_ = std::make_unique<net::FabricTopology>(fluid_, fc);
  }

  if (config_.check_invariants) {
    checks_ = std::make_unique<check::InvariantRegistry>(loop_);
    if (config_.candidate == Candidate::kMasq) {
      // The RConnrename/cache/conntrack invariants are MasQ mechanisms;
      // other candidates legitimately keep virtual GIDs in their QPCs
      // (SR-IOV translates them in the VXLAN offload), so only the MasQ
      // testbed registers component auditors. Per-instance virtqueue
      // probes are added in add_instance().
      for (std::size_t h = 0; h < hosts_.size(); ++h) {
        masq::Backend& backend = *backends_[h];
        check::register_qp_auditor(*checks_, hosts_[h]->rnic(0), controller_);
        check::register_cache_auditor(*checks_, backend.mapping_cache(),
                                      controller_);
        check::register_conntrack_auditor(*checks_, backend);
      }
    }
    checks_->attach(config_.check_audit_every);
  }
}

Testbed::~Testbed() {
  if (checks_ == nullptr) return;
  checks_->detach();
  // Final audit at quiescence — but only if the loop actually drained
  // (an aborted run legitimately leaves descriptors in flight). A
  // destructor must not throw, so violations are recorded and surfaced on
  // stderr; tests that want a hard failure run audit("quiesce") themselves
  // before teardown.
  if (!loop_.empty()) return;
  const check::ViolationPolicy saved = checks_->policy();
  checks_->set_policy(check::ViolationPolicy::kRecord);
  const std::size_t before = checks_->violations().size();
  checks_->audit("quiesce");
  checks_->set_policy(saved);
  if (checks_->violations().size() > before) {
    std::fputs(checks_->report().c_str(), stderr);
  }
}

masq::Backend& Testbed::masq_backend(std::size_t host_idx) {
  if (config_.candidate != Candidate::kMasq) {
    throw std::logic_error("masq_backend: testbed is not running MasQ");
  }
  return *backends_.at(host_idx);
}

baselines::FfRouter& Testbed::ffr(std::size_t host_idx) {
  if (config_.candidate != Candidate::kFreeFlow) {
    throw std::logic_error("ffr: testbed is not running FreeFlow");
  }
  return *ffrs_.at(host_idx);
}

rnic::RnicDevice* Testbed::device_by_ip(net::Ipv4Addr underlay_ip) {
  auto it = by_underlay_ip_.find(underlay_ip);
  return it == by_underlay_ip_.end() ? nullptr : it->second;
}

std::vector<net::LinkId> Testbed::fabric_path(net::Ipv4Addr src_ip,
                                              net::Ipv4Addr dst_ip,
                                              rnic::Qpn src_qpn,
                                              rnic::Qpn dst_qpn) {
  if (fabric_ == nullptr) return {};
  const auto src = host_of_ip_.find(src_ip);
  const auto dst = host_of_ip_.find(dst_ip);
  if (src == host_of_ip_.end() || dst == host_of_ip_.end()) return {};
  net::EcmpKey key;
  key.src_ip = src_ip.value;
  key.dst_ip = dst_ip.value;
  // RoCEv2 spreads flows by varying the UDP source port per QP pair; fold
  // the 24-bit QPNs into the 16-bit port fields the same way.
  key.src_port = static_cast<std::uint16_t>(src_qpn ^ (src_qpn >> 16));
  key.dst_port = static_cast<std::uint16_t>(dst_qpn ^ (dst_qpn >> 16));
  return fabric_->path(src->second, dst->second, key);
}

net::Ipv4Addr Testbed::next_vip(std::uint32_t vni) {
  const std::uint32_t n = ++vip_counter_[vni];
  // 192.168.x.y within the tenant (x.y > 256 instances supported).
  return net::Ipv4Addr{
      net::Ipv4Addr::from_octets(192, 168, 1, 0).value + n};
}

void Testbed::allow_all(std::uint32_t vni) { vnet_.policy(vni).allow_all(); }

void Testbed::program_tunnels_for(const Instance& inst) {
  // The cloud control plane programs VXLAN tunnel tables on every host's
  // NIC: peer vGID -> (physical GID of its host, tenant VNI), plus the
  // reverse entries for the new instance.
  const net::Gid new_vgid = net::Gid::from_ipv4(inst.vip);
  const net::Gid new_pgid =
      net::Gid::from_ipv4(hosts_[inst.host_idx]->rnic(0).config().ip);
  for (const auto& other : instances_) {
    if (other->vni != inst.vni) continue;
    rnic::RnicDevice& other_dev = hosts_[other->host_idx]->rnic(0);
    other_dev.program_tunnel(new_vgid, {new_pgid, inst.vni});
    const net::Gid other_vgid = net::Gid::from_ipv4(other->vip);
    const net::Gid other_pgid =
        net::Gid::from_ipv4(other_dev.config().ip);
    hosts_[inst.host_idx]->rnic(0).program_tunnel(other_vgid,
                                                  {other_pgid, other->vni});
  }
}

std::optional<std::size_t> Testbed::add_instance(
    std::optional<std::uint32_t> vni_opt) {
  const std::uint32_t vni = vni_opt.value_or(config_.default_vni);
  const std::size_t host_idx = instances_.size() % hosts_.size();
  hyp::Host& host = *hosts_[host_idx];
  rnic::RnicDevice& dev = host.rnic(0);

  auto inst = std::make_unique<Instance>();
  inst->host_idx = host_idx;
  inst->vni = vni;
  inst->vip = next_vip(vni);
  const auto mac =
      net::MacAddr::from_u64(0x02aa00000000ull + instances_.size() + 1);

  switch (config_.candidate) {
    case Candidate::kHostRdma: {
      // A bare-metal process: no VM, PF access, physical addressing.
      inst->oob = vnet_.create_endpoint(vni, inst->vip);
      inst->ctx = std::make_unique<baselines::HostContext>(
          host, dev, *inst->oob, config_.cal.driver_costs);
      break;
    }
    case Candidate::kSriov: {
      if (vf_in_use_[host_idx] >= dev.config().num_vfs) {
        return std::nullopt;  // Table 5: out of VFs (non-ARI PCIe)
      }
      hyp::Vm::Config vc;
      vc.name = "vm-" + std::to_string(instances_.size());
      vc.mem_bytes = config_.cal.vm_mem_bytes;
      vc.qemu_overhead_bytes = config_.cal.vm_overhead_bytes;
      vc.vni = vni;
      vc.vip = inst->vip;
      vc.mac = mac;
      vc.compute_overhead = config_.cal.vm_compute_overhead;
      try {
        inst->vm = std::make_unique<hyp::Vm>(host, vc);
      } catch (const std::bad_alloc&) {
        return std::nullopt;  // out of host DRAM
      }
      const auto vf = static_cast<rnic::FnId>(++vf_in_use_[host_idx]);
      dev.set_fn_address(vf, inst->vip, mac, vni, /*vxlan_offload=*/true);
      inst->oob = vnet_.create_endpoint(vni, inst->vip);
      inst->ctx = std::make_unique<baselines::SriovContext>(
          *inst->vm, dev, vf, *inst->oob, config_.cal.driver_costs);
      program_tunnels_for(*inst);
      break;
    }
    case Candidate::kFreeFlow: {
      hyp::Container::Config cc;
      cc.name = "ctr-" + std::to_string(instances_.size());
      cc.vni = vni;
      cc.vip = inst->vip;
      inst->container = std::make_unique<hyp::Container>(host, cc);
      inst->oob = vnet_.create_endpoint(vni, inst->vip);
      inst->ctx = std::make_unique<baselines::FreeflowContext>(
          *inst->container, *ffrs_[host_idx], *inst->oob);
      // FreeFlow's mapping service learns the overlay->underlay binding.
      controller_.register_vgid(vni, net::Gid::from_ipv4(inst->vip),
                                net::Gid::from_ipv4(dev.config().ip));
      break;
    }
    case Candidate::kMasq: {
      hyp::Vm::Config vc;
      vc.name = "vm-" + std::to_string(instances_.size());
      vc.mem_bytes = config_.cal.vm_mem_bytes;
      vc.qemu_overhead_bytes = config_.cal.vm_overhead_bytes;
      vc.vni = vni;
      vc.vip = inst->vip;
      vc.mac = mac;
      vc.compute_overhead = config_.cal.vm_compute_overhead;
      try {
        inst->vm = std::make_unique<hyp::Vm>(host, vc);
      } catch (const std::bad_alloc&) {
        return std::nullopt;  // Table 5: out of host DRAM
      }
      inst->oob = vnet_.create_endpoint(vni, inst->vip);
      auto& session = backends_[host_idx]->register_vm(*inst->vm);
      virtio::ChannelCosts vcosts = config_.cal.virtio_costs;
      inst->ctx = std::make_unique<masq::MasqContext>(session, *inst->oob,
                                                      vcosts);
      if (checks_ != nullptr) {
        check::register_ring_auditor(
            *checks_,
            check::make_ring_probe(
                "inst" + std::to_string(instances_.size()),
                static_cast<masq::MasqContext&>(*inst->ctx).virtqueue()));
      }
      break;
    }
  }

  // Default posture for the tests/benches: the tenant allows everything;
  // security experiments tighten rules explicitly afterwards. Rules are
  // installed only for the new VM's security group (plus the tenant
  // firewall once) to keep the chains free of duplicates.
  overlay::SecurityPolicy& pol = vnet_.policy(vni);
  if (pol.firewall(overlay::Chain::kForward).size() == 0) {
    pol.firewall(overlay::Chain::kForward)
        .add_rule(overlay::Rule::allow_all());
  }
  pol.security_group(inst->vip, overlay::Chain::kInput)
      .add_rule(overlay::Rule::allow_all());
  pol.security_group(inst->vip, overlay::Chain::kOutput)
      .add_rule(overlay::Rule::allow_all());

  instances_.push_back(std::move(inst));
  return instances_.size() - 1;
}

rnic::Status Testbed::migrate_instance(std::size_t i,
                                       std::size_t target_host) {
  if (config_.candidate != Candidate::kMasq) {
    return rnic::Status::kInvalidArgument;
  }
  if (i >= instances_.size() || target_host >= hosts_.size()) {
    return rnic::Status::kNotFound;
  }
  Instance& inst = *instances_[i];
  if (inst.host_idx == target_host) return rnic::Status::kOk;
  if (inst.vm == nullptr || inst.ctx == nullptr) {
    return rnic::Status::kInvalidState;
  }

  // The old session's vBond hands over the (VNI, vGID) registration so its
  // eventual destruction doesn't clobber the successor's mapping.
  static_cast<masq::MasqContext&>(*inst.ctx).session().vbond().release();
  // The ring probe holds a reference into the dying context's virtqueue.
  if (checks_ != nullptr) {
    checks_->remove_auditor("vq-ring[inst" + std::to_string(i) + "]");
  }
  inst.ctx.reset();
  vnet_.destroy_endpoint(inst.oob);
  hyp::Vm::Config vc = inst.vm->config();
  inst.vm.reset();  // returns the reservation to the source host

  inst.host_idx = target_host;
  inst.vm = std::make_unique<hyp::Vm>(*hosts_[target_host], vc);
  // The vEth keeps its address; the security-group chains for this vIP
  // persist in the tenant policy across the move.
  inst.oob = vnet_.create_endpoint(inst.vni, inst.vip);
  auto& session = backends_[target_host]->register_vm(*inst.vm);
  inst.ctx = std::make_unique<masq::MasqContext>(session, *inst.oob,
                                                 config_.cal.virtio_costs);
  if (checks_ != nullptr) {
    check::register_ring_auditor(
        *checks_,
        check::make_ring_probe(
            "inst" + std::to_string(i),
            static_cast<masq::MasqContext&>(*inst.ctx).virtqueue()));
  }
  return rnic::Status::kOk;
}

sim::Task<rnic::Status> Testbed::migrate_vm(std::size_t i,
                                            std::size_t target_host,
                                            masq::MigrationCosts costs,
                                            MigrationCorruption corrupt) {
  last_migration_report_ = {};
  if (config_.candidate != Candidate::kMasq) {
    co_return rnic::Status::kInvalidArgument;
  }
  if (i >= instances_.size() || target_host >= hosts_.size()) {
    co_return rnic::Status::kNotFound;
  }
  Instance& inst = *instances_[i];
  if (inst.host_idx == target_host) co_return rnic::Status::kOk;
  if (inst.vm == nullptr || inst.ctx == nullptr) {
    co_return rnic::Status::kInvalidState;
  }

  masq::Migrator::Env env;
  env.loop = &loop_;
  env.ctx = &static_cast<masq::MasqContext&>(*inst.ctx);
  env.source = backends_[inst.host_idx].get();
  env.destination = backends_[target_host].get();
  env.dest_host = hosts_[target_host].get();
  env.vm_slot = &inst.vm;
  // Physical GIDs are derived from host underlay IPs; invert by scan (the
  // host count is small and this only runs during a migration).
  env.device_by_pgid = [this](net::Gid pgid) -> rnic::RnicDevice* {
    for (auto& host : hosts_) {
      if (host->rnic(0).gid(rnic::kPf) == pgid) return &host->rnic(0);
    }
    return nullptr;
  };
  // QPN spaces are disjoint per device (dc.id_space above), so a QP is
  // hosted by at most one device — scan for it. Concurrent migrations use
  // this to chase a paused peer QP that moved while they held it.
  env.device_by_qpn = [this](rnic::Qpn qpn) -> rnic::RnicDevice* {
    for (auto& host : hosts_) {
      if (host->rnic(0).qp_exists(qpn)) return &host->rnic(0);
    }
    return nullptr;
  };
  if (checks_ != nullptr) {
    env.report_violation = check::make_migration_reporter(*checks_);
  }
  env.costs = costs;

  masq::Migrator migrator(std::move(env));
  if (corrupt == MigrationCorruption::kDropWqe) {
    migrator.snapshot_drop_wqe_for_test();
  } else if (corrupt == MigrationCorruption::kDuplicateWqe) {
    migrator.snapshot_duplicate_wqe_for_test();
  }
  const rnic::Status st = co_await migrator.run();
  last_migration_report_ = migrator.report();
  // A drain timeout rolls back before anything moves; every other outcome
  // (including a restore error carried in the report) left the VM booted
  // on the destination host.
  if (st != rnic::Status::kDeadlineExceeded) inst.host_idx = target_host;
  co_return st;
}

void Testbed::add_instances(int n) {
  for (int i = 0; i < n; ++i) {
    if (!add_instance().has_value()) {
      throw std::runtime_error("testbed cannot host instance " +
                               std::to_string(i) + " under " +
                               to_string(config_.candidate));
    }
  }
}

}  // namespace fabric
