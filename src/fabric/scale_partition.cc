// Partition-parallel scale-storm engine (DESIGN.md §13).
//
// The storm is split into cfg.shards partitions — partition p owns every
// host h with h % shards == p (so a VM's agent/cache state is purely
// local) and *is* the home of shard p's query service. Each partition has
// its own sim::EventLoop and, crucially, a full REPLICA of the control
// plane: a Controller with every VM registered and every churn event
// (IP change, outage toggle) scheduled at identical times in every
// partition. Replicas never exchange state — they stay identical because
// they apply the identical mutation schedule — which lets the reply path
// evaluate lookups locally.
//
// The only cross-partition traffic is the HostAgent batch round trip,
// intercepted via set_batch_transport: a flush records (send_time, shard,
// keys) in its partition's outbox and suspends on a promise. Between
// windows the single-threaded coordinator merges all outboxes by
// (send_time, partition, arrival-order) — a deterministic total order —
// replays each shard's FIFO service queue analytically (same recurrence
// ServiceQueue implements event-by-event), and schedules the reply at
// end_of_service + rtt back into the REQUESTING partition, which
// evaluates reachability + lookup against its own replica at reply time.
//
// Conservative lookahead: windows end at (earliest pending event + rtt).
// A batch sent inside a window replies no earlier than send + rtt, i.e.
// at or after the window barrier — so no partition ever needs an event
// another partition hasn't produced yet, and the event schedule is a pure
// function of (config, seed): byte-identical at any worker-thread count.
#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/invariant.h"
#include "check/ownership_audit.h"
#include "fabric/scale.h"
#include "fabric/storm_schedule.h"
#include "fabric/traffic.h"
#include "net/addr.h"
#include "sdn/controller.h"
#include "sdn/host_agent.h"
#include "sim/flat_map.h"
#include "sim/partition.h"
#include "sim/ready_queue.h"
#include "sim/stats.h"
#include "sim/task.h"

namespace fabric {

namespace {

using sdn::Controller;
using sdn::VirtKey;

// One host→shard batch query, captured at its send time and sequenced by
// the coordinator against every other partition's traffic.
struct BatchRequest {
  sim::Time t = 0;        // send time
  std::size_t shard = 0;  // destination shard
  std::size_t part = 0;   // requesting partition
  std::vector<VirtKey> keys;
  sim::Promise<std::vector<Controller::QueryReply>> reply;
};

struct PartDriver {
  const ScaleConfig& cfg;
  std::size_t part;
  sim::EventLoop& loop;
  Controller controller;  // full replica (see file comment)
  // Indexed by GLOBAL host id; only this partition's hosts are non-null.
  std::vector<std::unique_ptr<sdn::HostAgent>> agents;
  std::vector<std::uint32_t> gen;  // full per-VM generation replica
  sim::Stats setup_us;
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t not_found = 0;
  std::uint64_t attempted = 0;
  // Reply-side per-shard counters. The replica Controllers never see query
  // traffic (the transport bypasses query_batch), so the legacy shard
  // counters are accumulated here instead — by the partition that ASKED,
  // then summed; the totals match because every key is counted exactly
  // once either way.
  std::vector<std::uint64_t> q_queries;
  std::vector<std::uint64_t> q_batched;
  std::vector<std::uint64_t> q_unreachable;
  // Batches sent this window; drained by the coordinator at the barrier.
  std::vector<BatchRequest> outbox;
  // Warm-path state (cfg.warm only). Keyed/updated exactly like the
  // single-loop engine; a pair's state is only ever touched by its src
  // VM's partition, so no cross-partition traffic is added.
  std::vector<storm::WarmTokens> warm_vm;
  sim::FlatMap<std::uint64_t, storm::ParkedConn> parked;
  std::uint64_t warm_pooled = 0;
  std::uint64_t warm_reused = 0;
  std::uint64_t warm_cold = 0;
  // Armed by cfg.check / MASQ_CHECK: hot paths report their driver access
  // so the auditor can verify the calling thread owns this partition's
  // window. Null when unarmed (one branch per entry point).
  check::PartitionOwnershipAuditor* audit = nullptr;

  PartDriver(const ScaleConfig& c, std::size_t p, sim::EventLoop& l)
      : cfg(c),
        part(p),
        loop(l),
        controller(l,
                   sdn::ControllerConfig{
                       .query_rtt = c.query_rtt,
                       .num_shards = c.shards,
                       .query_service = c.query_service,
                   }),
        gen(storm::total_vms(c), 0),
        q_queries(c.shards, 0),
        q_batched(c.shards, 0),
        q_unreachable(c.shards, 0) {
    agents.resize(c.hosts);
    for (std::size_t h = 0; h < c.hosts; ++h) {
      if (storm::partition_of_host(c, h) != part) continue;
      agents[h] = std::make_unique<sdn::HostAgent>(
          loop, controller,
          sdn::HostAgentConfig{
              .cache_hit_cost = c.cache_hit_cost,
              .cache_staleness_bound = c.staleness_bound,
              .batch_window = c.batch_window,
              .max_batch = c.max_batch,
              .speculative_prefill = c.warm,
          });
      agents[h]->set_batch_transport(
          [this](std::size_t shard, std::vector<VirtKey> keys) {
            return batch_transport(this, shard, std::move(keys));
          });
    }
    for (std::size_t vm = 0; vm < storm::total_vms(c); ++vm) register_vm(vm);
    if (c.warm) {
      warm_vm.assign(storm::total_vms(c), storm::WarmTokens{c.warm_pool, 0});
    }
  }

  void register_vm(std::size_t vm) {
    controller.register_vgid(storm::vni_of(cfg, vm),
                             storm::gid_of(vm, gen[vm]),
                             storm::pgid_of_host(storm::host_of(cfg, vm)));
  }

  // Parks the batch in the outbox for the coordinator; resumes when the
  // reply delivery fires in this partition at reply time.
  static sim::Task<std::vector<Controller::QueryReply>> batch_transport(
      PartDriver* d, std::size_t shard, std::vector<VirtKey> keys) {
    if (d->audit) d->audit->note_state_access(d);
    sim::Promise<std::vector<Controller::QueryReply>> promise(d->loop);
    auto fut = promise.get_future();
    d->outbox.push_back(BatchRequest{d->loop.now(), shard, d->part,
                                     std::move(keys), std::move(promise)});
    co_return co_await fut;
  }

  // Same connection attempt as the single-loop engine (scale.cc), against
  // this partition's local agent and replica state.
  static sim::Task<void> connect(PartDriver* d, std::size_t src,
                                 std::size_t dst, sim::Time start) {
    co_await sim::delay(d->loop, start);
    if (d->audit) d->audit->note_state_access(d);
    ++d->attempted;
    const sim::Time t0 = d->loop.now();
    const std::uint32_t dst_gen = d->gen[dst];
    const std::uint64_t pair =
        static_cast<std::uint64_t>(src) * storm::total_vms(d->cfg) + dst;
    if (d->cfg.warm) {
      // Connection reuse — identical decision sequence to scale.cc.
      auto it = d->parked.find(pair);
      if (it != d->parked.end()) {
        const bool live = it->second.expires > t0 && it->second.gen == dst_gen;
        d->parked.erase(pair);
        if (live) {
          co_await sim::delay(d->loop, d->cfg.warm_reuse_cost);
          ++d->ok;
          ++d->warm_reused;
          d->setup_us.add(sim::to_us(d->loop.now() - t0));
          d->parked.insert_or_assign(
              pair, storm::ParkedConn{
                        dst_gen, d->loop.now() + d->cfg.warm_reuse_ttl});
          co_return;
        }
      }
    }
    const net::Gid peer = storm::gid_of(dst, dst_gen);
    const auto res =
        co_await d->agents[storm::host_of(d->cfg, src)]->resolve_ex(
            storm::vni_of(d->cfg, dst), peer);
    switch (res.status) {
      case sdn::MappingCache::ResolveStatus::kOk:
      case sdn::MappingCache::ResolveStatus::kOkDegraded: {
        res.status == sdn::MappingCache::ResolveStatus::kOk ? ++d->ok
                                                            : ++d->degraded;
        sim::Time ladder = d->cfg.ladder_cost;
        if (d->cfg.warm) {
          if (storm::take_warm_token(d->cfg, d->warm_vm[src],
                                     d->loop.now())) {
            ladder = d->cfg.warm_ladder_cost;
            ++d->warm_pooled;
          } else {
            ++d->warm_cold;
          }
        }
        co_await sim::delay(d->loop, ladder);
        d->setup_us.add(sim::to_us(d->loop.now() - t0));
        if (d->cfg.warm) {
          d->parked.insert_or_assign(
              pair, storm::ParkedConn{
                        dst_gen, d->loop.now() + d->cfg.warm_reuse_ttl});
        }
        break;
      }
      case sdn::MappingCache::ResolveStatus::kNotFound:
        ++d->not_found;
        break;
      case sdn::MappingCache::ResolveStatus::kUnavailable:
        ++d->unavailable;
        break;
    }
  }

  // Replica mutations: scheduled in EVERY partition at identical times, so
  // the replicas stay identical without exchanging state.
  static sim::Task<void> ip_change(PartDriver* d, std::size_t vm,
                                   sim::Time when) {
    co_await sim::delay(d->loop, when);
    if (d->audit) d->audit->note_state_access(d);
    d->controller.unregister_vgid(storm::vni_of(d->cfg, vm),
                                  storm::gid_of(vm, d->gen[vm]));
    ++d->gen[vm];
    d->register_vm(vm);
  }

  static sim::Task<void> shard_down(PartDriver* d, std::size_t shard,
                                    sim::Time from, sim::Time until) {
    co_await sim::delay(d->loop, from);
    if (d->audit) d->audit->note_state_access(d);
    d->controller.set_shard_reachable(shard, false);
    co_await sim::delay(d->loop, until - from);
    d->controller.set_shard_reachable(shard, true);
  }
};

// Analytic replay of one shard's FIFO query service (sim::ServiceQueue's
// recurrence, applied to the merged request order instead of event order):
// service starts at max(send, busy_until) and runs keys × budget;
// max_depth samples in-system requests + 1 at submit, exactly where
// Controller::charge_query_path samples queue.depth() + 1.
struct ShardService {
  sim::Time busy_until = 0;
  std::deque<sim::Time> ends;  // completion times of in-system requests
  std::size_t max_depth = 0;
};

}  // namespace

ScaleReport run_scale_storm_parallel(const ScaleConfig& cfg,
                                     std::size_t threads) {
  // Pass-through mode (batch_window == 0) resolves misses via
  // Controller::query_ex inside the cache — there is no transport seam to
  // intercept — and a zero RTT gives zero lookahead. Both fall back.
  if (cfg.batch_window <= 0 || cfg.query_rtt <= 0) {
    return run_scale_storm(cfg);
  }

  const std::size_t nparts = cfg.shards;
  sim::PartitionGroup group(nparts, threads);
  if (cfg.trace) group.enable_trace();

  std::vector<std::unique_ptr<PartDriver>> parts;
  parts.reserve(nparts);
  for (std::size_t p = 0; p < nparts; ++p) {
    parts.push_back(std::make_unique<PartDriver>(cfg, p, group.loop(p)));
  }

  // Partition-ownership auditor (DESIGN.md §16): installed before any
  // event is scheduled so it sees the whole run. Observation-only, so the
  // report and trace hash below are byte-identical armed or unarmed.
  std::unique_ptr<check::PartitionOwnershipAuditor> auditor;
  if (cfg.check || check::env_enabled()) {
    auditor = std::make_unique<check::PartitionOwnershipAuditor>(group);
    for (std::size_t p = 0; p < nparts; ++p) {
      const std::string tag = "[" + std::to_string(p) + "]";
      auditor->tag_state(parts[p].get(), "PartDriver" + tag, p);
      auditor->tag_state(&parts[p]->controller, "Controller-replica" + tag,
                         p);
      auditor->tag_state(&parts[p]->parked, "parked-conn-table" + tag, p);
      parts[p]->audit = auditor.get();
    }
  }

  // Identical schedule (same seed, same draw order) as the single-loop
  // engine; each partition spawns its slice in the same relative order, so
  // same-timestamp ties break the same way within every partition.
  const storm::StormSchedule sched = storm::StormSchedule::draw(cfg);
  for (const auto& c : sched.wave_conns) {
    PartDriver& d =
        *parts[storm::partition_of_host(cfg, storm::host_of(cfg, c.src))];
    d.loop.spawn(PartDriver::connect(&d, c.src, c.dst, c.start));
  }
  for (const auto& ch : sched.ip_changes) {
    for (auto& d : parts) {
      d->loop.spawn(PartDriver::ip_change(d.get(), ch.vm, ch.when));
    }
  }
  for (const auto& c : sched.reset_conns) {
    PartDriver& d =
        *parts[storm::partition_of_host(cfg, storm::host_of(cfg, c.src))];
    d.loop.spawn(PartDriver::connect(&d, c.src, c.dst, c.start));
  }
  if (cfg.down_shard >= 0) {
    const std::size_t shard =
        static_cast<std::size_t>(cfg.down_shard) % cfg.shards;
    for (auto& d : parts) {
      d->loop.spawn(
          PartDriver::shard_down(d.get(), shard, cfg.down_from,
                                 cfg.down_until));
    }
  }

  // ---- coordinator loop ----
  std::vector<ShardService> svc(cfg.shards);
  std::vector<BatchRequest> reqs;
  const sim::Time lookahead = cfg.query_rtt;
  while (true) {
    // Deliver the batches captured in the window that just ran. Merge
    // order (send_time, partition, per-partition arrival order) is a
    // deterministic total order; stable_sort preserves the third key
    // because each outbox is already time-sorted.
    reqs.clear();
    for (auto& d : parts) {
      for (auto& r : d->outbox) reqs.push_back(std::move(r));
      d->outbox.clear();
    }
    std::stable_sort(reqs.begin(), reqs.end(),
                     [](const BatchRequest& a, const BatchRequest& b) {
                       return a.t != b.t ? a.t < b.t : a.part < b.part;
                     });
    for (BatchRequest& r : reqs) {
      sim::Time reply_time;
      if (cfg.query_service > 0 && !r.keys.empty()) {
        ShardService& m = svc[r.shard];
        while (!m.ends.empty() && m.ends.front() <= r.t) m.ends.pop_front();
        m.max_depth = std::max(m.max_depth, m.ends.size() + 1);
        const sim::Time start = std::max(r.t, m.busy_until);
        const sim::Time end =
            start + cfg.query_service * static_cast<sim::Time>(r.keys.size());
        m.busy_until = end;
        m.ends.push_back(end);
        reply_time = end + cfg.query_rtt;
      } else {
        reply_time = r.t + cfg.query_rtt;
      }
      // Reply evaluation runs in the REQUESTING partition at reply time,
      // against its own replica — valid because replicas are identical at
      // every simulated time.
      PartDriver* d = parts[r.part].get();
      d->loop.schedule_at(
          reply_time, [d, shard = r.shard, keys = std::move(r.keys),
                       reply = std::move(r.reply)]() mutable {
            // Fires inside the requesting partition's window: the replica
            // read below is exactly the access the auditor validates.
            if (d->audit) d->audit->note_state_access(&d->controller);
            std::vector<Controller::QueryReply> out;
            out.reserve(keys.size());
            const bool up = d->controller.shard_reachable(shard);
            for (const VirtKey& k : keys) {
              if (!up) {
                ++d->q_unreachable[shard];
                out.push_back(Controller::QueryReply{true, std::nullopt});
              } else {
                ++d->q_queries[shard];
                ++d->q_batched[shard];
                out.push_back(Controller::QueryReply{
                    false, d->controller.lookup(k.vni, k.vgid)});
              }
            }
            reply.set_value(std::move(out));
          });
    }
    const sim::Time next = group.min_next_event_time();
    if (next == sim::ReadyQueue::kMaxTime) break;  // drained, nothing in flight
    group.run_window_before(next + lookahead);
  }

  // ---- report assembly (mirrors run_scale_storm field for field) ----
  ScaleReport r;
  r.tenants = cfg.tenants;
  r.hosts = cfg.hosts;
  r.vms = storm::total_vms(cfg);
  r.shards = cfg.shards;
  r.seed = cfg.seed;
  sim::Stats setup_us;
  for (const auto& d : parts) {
    r.attempted += d->attempted;
    r.ok += d->ok;
    r.degraded += d->degraded;
    r.unavailable += d->unavailable;
    r.not_found += d->not_found;
    r.warm_pooled += d->warm_pooled;
    r.warm_reused += d->warm_reused;
    r.warm_cold += d->warm_cold;
    for (double s : d->setup_us.samples()) setup_us.add(s);
  }
  r.warm_enabled = cfg.warm;
  if (!setup_us.empty()) {
    r.p50_us = setup_us.percentile(50.0);
    r.p99_us = setup_us.percentile(99.0);
    r.max_us = setup_us.max();
  }
  r.elapsed_ms = sim::to_ms(group.last_event_time());
  if (r.elapsed_ms > 0) {
    r.kconn_per_s = static_cast<double>(r.ok + r.degraded) / r.elapsed_ms;
  }
  // Hosts in global order, same as the single-loop engine.
  for (std::size_t h = 0; h < cfg.hosts; ++h) {
    const auto& agent = parts[storm::partition_of_host(cfg, h)]->agents[h];
    const sdn::MappingCache& c = agent->cache();
    r.cache_hits += c.hits();
    r.cache_misses += c.misses();
    r.coalesced += c.single_flight_coalesced();
    r.agent_batches += agent->batches();
    r.agent_batched_keys += agent->batched_keys();
    r.warm_prefills += agent->prefills();
  }
  const std::uint64_t lookups = r.cache_hits + r.cache_misses + r.coalesced;
  if (lookups > 0) {
    r.hit_rate =
        static_cast<double>(r.cache_hits) / static_cast<double>(lookups);
  }
  r.per_shard.resize(cfg.shards);
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    ShardReport& sr = r.per_shard[s];
    for (const auto& d : parts) {
      sr.queries += d->q_queries[s];
      sr.batched_queries += d->q_batched[s];
      sr.unreachable += d->q_unreachable[s];
    }
    sr.max_queue_depth = svc[s].max_depth;
    sr.table_size = parts[0]->controller.shard_table_size(s);
    for (std::size_t h = 0; h < cfg.hosts; ++h) {
      sr.degraded_serves += parts[storm::partition_of_host(cfg, h)]
                                ->agents[h]
                                ->cache()
                                .degraded_serves(s);
    }
  }
  r.sim_events = group.total_events();
  r.trace_hash = cfg.trace ? group.combined_trace_hash() : 0;
  r.engine_threads = group.threads();
  // Fabric traffic phase: pure function of (config, schedule) on its own
  // single-threaded loop — byte-identical to the single-loop engine's
  // block at any worker-thread count.
  if (cfg.traffic.enabled) r.traffic = run_traffic_phase(cfg, sched);
  return r;
}

}  // namespace fabric
