#include "fabric/scale.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "fabric/storm_schedule.h"
#include "fabric/traffic.h"
#include "net/addr.h"
#include "sdn/controller.h"
#include "sdn/host_agent.h"
#include "sim/event_loop.h"
#include "sim/flat_map.h"
#include "sim/stats.h"
#include "sim/task.h"

namespace fabric {

namespace {

using storm::ParkedConn;
using storm::WarmTokens;
using storm::take_warm_token;

// The whole storm lives in one Driver so the coroutines below can take a
// raw pointer (the codebase's detached-coroutine idiom); the Driver
// outlives the loop it drives.
struct Driver {
  const ScaleConfig& cfg;
  sim::EventLoop loop;
  sdn::Controller controller;
  std::vector<std::unique_ptr<sdn::HostAgent>> agents;  // one per host
  // Per-VM vGID generation: bumped by each vBond IP change; the current
  // vGID of VM g is gid_of(g, gen[g]).
  std::vector<std::uint32_t> gen;
  sim::Stats setup_us;  // completed (ok/degraded) setups only
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t not_found = 0;
  std::uint64_t attempted = 0;
  // Warm-path state (cfg.warm only; empty otherwise).
  std::vector<WarmTokens> warm_vm;
  sim::FlatMap<std::uint64_t, ParkedConn> parked;  // key: src*vms + dst
  std::uint64_t warm_pooled = 0;
  std::uint64_t warm_reused = 0;
  std::uint64_t warm_cold = 0;

  explicit Driver(const ScaleConfig& c)
      : cfg(c),
        controller(loop,
                   sdn::ControllerConfig{
                       .query_rtt = c.query_rtt,
                       .num_shards = c.shards,
                       .query_service = c.query_service,
                   }),
        gen(c.hosts * c.vms_per_host, 0) {
    for (std::size_t h = 0; h < c.hosts; ++h) {
      agents.push_back(std::make_unique<sdn::HostAgent>(
          loop, controller,
          sdn::HostAgentConfig{
              .cache_hit_cost = c.cache_hit_cost,
              .cache_staleness_bound = c.staleness_bound,
              .batch_window = c.batch_window,
              .max_batch = c.max_batch,
              .speculative_prefill = c.warm,
          }));
    }
    if (c.warm) warm_vm.assign(total_vms(), WarmTokens{c.warm_pool, 0});
  }

  // Topology arithmetic is shared with the partition engine so the two
  // describe the same storm (fabric/storm_schedule.h).
  std::size_t total_vms() const { return storm::total_vms(cfg); }
  std::size_t host_of(std::size_t vm) const { return storm::host_of(cfg, vm); }
  std::size_t tenant_of(std::size_t vm) const {
    return storm::tenant_of(cfg, vm);
  }
  std::uint32_t vni_of(std::size_t vm) const { return storm::vni_of(cfg, vm); }
  net::Gid gid_of(std::size_t vm, std::uint32_t generation) const {
    return storm::gid_of(vm, generation);
  }
  net::Gid pgid_of_host(std::size_t h) const {
    return storm::pgid_of_host(h);
  }

  void register_vm(std::size_t vm) {
    controller.register_vgid(vni_of(vm), gid_of(vm, gen[vm]),
                             pgid_of_host(host_of(vm)));
  }

  // One connection attempt from `src` to whatever vGID `dst` holds when
  // the attempt starts (a churned peer between scheduling and start is
  // resolved under its *new* identity — exactly what a retrying
  // application would see).
  static sim::Task<void> connect(Driver* d, std::size_t src, std::size_t dst,
                                 sim::Time start) {
    co_await sim::delay(d->loop, start);
    ++d->attempted;
    const sim::Time t0 = d->loop.now();
    const std::uint32_t dst_gen = d->gen[dst];
    const std::uint64_t pair =
        static_cast<std::uint64_t>(src) * d->total_vms() + dst;
    if (d->cfg.warm) {
      // Connection reuse: a parked RTS QP toward this peer (same vGID
      // generation, inside its idle TTL) skips resolve AND ladder — one
      // application-level hello and the pair is live again.
      auto it = d->parked.find(pair);
      if (it != d->parked.end()) {
        const bool live = it->second.expires > t0 && it->second.gen == dst_gen;
        d->parked.erase(pair);
        if (live) {
          co_await sim::delay(d->loop, d->cfg.warm_reuse_cost);
          ++d->ok;
          ++d->warm_reused;
          d->setup_us.add(sim::to_us(d->loop.now() - t0));
          d->parked.insert_or_assign(
              pair, ParkedConn{dst_gen,
                               d->loop.now() + d->cfg.warm_reuse_ttl});
          co_return;
        }
        // Stale (peer churned or idle-reclaimed): fall through cold.
      }
    }
    const net::Gid peer = d->gid_of(dst, dst_gen);
    const auto res = co_await d->agents[d->host_of(src)]->resolve_ex(
        d->vni_of(dst), peer);
    switch (res.status) {
      case sdn::MappingCache::ResolveStatus::kOk:
      case sdn::MappingCache::ResolveStatus::kOkDegraded: {
        res.status == sdn::MappingCache::ResolveStatus::kOk ? ++d->ok
                                                            : ++d->degraded;
        // The rest of the setup ladder (Fig. 15 minus the resolve). A warm
        // token (pre-staged QP at INIT) shrinks it to RTR→RTS.
        sim::Time ladder = d->cfg.ladder_cost;
        if (d->cfg.warm) {
          if (take_warm_token(d->cfg, d->warm_vm[src], d->loop.now())) {
            ladder = d->cfg.warm_ladder_cost;
            ++d->warm_pooled;
          } else {
            ++d->warm_cold;
          }
        }
        co_await sim::delay(d->loop, ladder);
        d->setup_us.add(sim::to_us(d->loop.now() - t0));
        if (d->cfg.warm) {
          d->parked.insert_or_assign(
              pair, ParkedConn{dst_gen,
                               d->loop.now() + d->cfg.warm_reuse_ttl});
        }
        break;
      }
      case sdn::MappingCache::ResolveStatus::kNotFound:
        ++d->not_found;
        break;
      case sdn::MappingCache::ResolveStatus::kUnavailable:
        ++d->unavailable;
        break;
    }
  }

  // vBond IP change: the VM drops its vGID and registers a fresh one. The
  // unregister broadcasts an invalidation into every host cache; the
  // register pushes the new binding.
  static sim::Task<void> ip_change(Driver* d, std::size_t vm,
                                   sim::Time when) {
    co_await sim::delay(d->loop, when);
    d->controller.unregister_vgid(d->vni_of(vm), d->gid_of(vm, d->gen[vm]));
    ++d->gen[vm];
    d->register_vm(vm);
  }

  static sim::Task<void> shard_down(Driver* d, std::size_t shard,
                                    sim::Time from, sim::Time until) {
    co_await sim::delay(d->loop, from);
    d->controller.set_shard_reachable(shard, false);
    co_await sim::delay(d->loop, until - from);
    d->controller.set_shard_reachable(shard, true);
  }
};

}  // namespace

ScaleReport run_scale_storm(const ScaleConfig& cfg) {
  Driver d(cfg);
  if (cfg.trace) d.loop.enable_trace();
  const std::size_t vms = d.total_vms();
  for (std::size_t vm = 0; vm < vms; ++vm) d.register_vm(vm);

  // The whole schedule — peers, jitters, churn times — is drawn up front
  // from one seeded stream, in one deterministic order; nothing consumes
  // randomness while the loop runs, so the event stream cannot depend on
  // interleaving. Spawn order matches the schedule's vector order exactly
  // (it is the same-timestamp tie-break).
  const storm::StormSchedule sched = storm::StormSchedule::draw(cfg);
  for (const auto& c : sched.wave_conns) {
    d.loop.spawn(Driver::connect(&d, c.src, c.dst, c.start));
  }
  for (const auto& ch : sched.ip_changes) {
    d.loop.spawn(Driver::ip_change(&d, ch.vm, ch.when));
  }
  for (const auto& c : sched.reset_conns) {
    d.loop.spawn(Driver::connect(&d, c.src, c.dst, c.start));
  }
  if (cfg.down_shard >= 0) {
    d.loop.spawn(Driver::shard_down(
        &d, static_cast<std::size_t>(cfg.down_shard) % cfg.shards,
        cfg.down_from, cfg.down_until));
  }

  d.loop.run();

  ScaleReport r;
  r.tenants = cfg.tenants;
  r.hosts = cfg.hosts;
  r.vms = vms;
  r.shards = cfg.shards;
  r.seed = cfg.seed;
  r.attempted = d.attempted;
  r.ok = d.ok;
  r.degraded = d.degraded;
  r.unavailable = d.unavailable;
  r.not_found = d.not_found;
  if (!d.setup_us.empty()) {
    r.p50_us = d.setup_us.percentile(50.0);
    r.p99_us = d.setup_us.percentile(99.0);
    r.max_us = d.setup_us.max();
  }
  r.elapsed_ms = sim::to_ms(d.loop.now());
  if (r.elapsed_ms > 0) {
    r.kconn_per_s = static_cast<double>(d.ok + d.degraded) / r.elapsed_ms;
  }
  for (const auto& agent : d.agents) {
    const sdn::MappingCache& c = agent->cache();
    r.cache_hits += c.hits();
    r.cache_misses += c.misses();
    r.coalesced += c.single_flight_coalesced();
    r.agent_batches += agent->batches();
    r.agent_batched_keys += agent->batched_keys();
    r.warm_prefills += agent->prefills();
  }
  r.warm_enabled = cfg.warm;
  r.warm_pooled = d.warm_pooled;
  r.warm_reused = d.warm_reused;
  r.warm_cold = d.warm_cold;
  const std::uint64_t lookups = r.cache_hits + r.cache_misses + r.coalesced;
  if (lookups > 0) {
    r.hit_rate = static_cast<double>(r.cache_hits) /
                 static_cast<double>(lookups);
  }
  r.per_shard.resize(cfg.shards);
  for (std::size_t s = 0; s < cfg.shards; ++s) {
    ShardReport& sr = r.per_shard[s];
    sr.queries = d.controller.shard_queries(s);
    sr.batched_queries = d.controller.shard_batched_queries(s);
    sr.unreachable = d.controller.shard_unreachable_queries(s);
    sr.max_queue_depth = d.controller.shard_max_queue_depth(s);
    sr.table_size = d.controller.shard_table_size(s);
    for (const auto& agent : d.agents) {
      sr.degraded_serves += agent->cache().degraded_serves(s);
    }
  }
  r.sim_events = d.loop.events_executed();
  r.trace_hash = cfg.trace ? d.loop.trace_hash() : 0;
  r.engine_threads = 0;
  // Fabric traffic phase: a pure function of (config, schedule), so the
  // partitioned engine appends the identical block.
  if (cfg.traffic.enabled) r.traffic = run_traffic_phase(cfg, sched);
  return r;
}

std::string ScaleReport::json() const {
  std::string out;
  char buf[256];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  auto u64 = [](std::uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  emit("{\n");
  emit("  \"workload\": {\"tenants\": %zu, \"hosts\": %zu, \"vms\": %zu, "
       "\"shards\": %zu, \"seed\": %llu},\n",
       tenants, hosts, vms, shards, u64(seed));
  emit("  \"connections\": {\"attempted\": %llu, \"ok\": %llu, "
       "\"degraded\": %llu, \"unavailable\": %llu, \"not_found\": %llu},\n",
       u64(attempted), u64(ok), u64(degraded), u64(unavailable),
       u64(not_found));
  emit("  \"setup_latency_us\": {\"p50\": %.3f, \"p99\": %.3f, "
       "\"max\": %.3f},\n",
       p50_us, p99_us, max_us);
  emit("  \"throughput\": {\"elapsed_ms\": %.3f, \"kconn_per_s\": %.3f},\n",
       elapsed_ms, kconn_per_s);
  emit("  \"cache\": {\"hits\": %llu, \"misses\": %llu, "
       "\"coalesced\": %llu, \"hit_rate\": %.4f, \"agent_batches\": %llu, "
       "\"agent_batched_keys\": %llu},\n",
       u64(cache_hits), u64(cache_misses), u64(coalesced), hit_rate,
       u64(agent_batches), u64(agent_batched_keys));
  // Emitted only when the warm path ran, so warm-off reports byte-match
  // the pre-warm-path schema (the determinism tests diff them raw).
  if (warm_enabled) {
    emit("  \"warm\": {\"pooled\": %llu, \"reused\": %llu, \"cold\": %llu, "
         "\"prefills\": %llu},\n",
         u64(warm_pooled), u64(warm_reused), u64(warm_cold),
         u64(warm_prefills));
  }
  // Fabric traffic phase: emitted only when it ran, so traffic-off reports
  // byte-match the legacy schema. Topology shape (hosts/leaves/spines) is
  // deliberately NOT serialized — the equivalence sweep byte-diffs a
  // degenerate 1-leaf fabric against direct mode, and only the measured
  // outcomes are required to coincide.
  if (traffic.enabled) {
    emit("  \"topology\": {\"flows\": %llu, \"bytes\": %llu, "
         "\"elapsed_ms\": %.3f, \"agg_gbps\": %.3f,\n",
         u64(traffic.flows), u64(traffic.total_bytes), traffic.elapsed_ms,
         traffic.agg_gbps);
    emit("    \"fct_us\": {\"p50\": %.3f, \"p99\": %.3f, \"max\": %.3f},\n",
         traffic.fct_p50_us, traffic.fct_p99_us, traffic.fct_max_us);
    emit("    \"ecmp_fold\": %llu, \"spine_crossings\": %zu, "
         "\"ecn_marks\": %llu, \"recoveries\": %llu, \"throttled\": %llu,\n",
         u64(traffic.ecmp_fold), traffic.spine_crossings,
         u64(traffic.ecn_marks), u64(traffic.dcqcn_recoveries),
         u64(traffic.throttled_flows));
    emit("    \"peak_spine_util\": %.4f, \"peak_tenant_gbps\": %.3f},\n",
         traffic.peak_spine_util, traffic.peak_tenant_gbps);
  }
  emit("  \"per_shard\": [\n");
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    const ShardReport& sr = per_shard[s];
    emit("    {\"shard\": %zu, \"queries\": %llu, \"batched\": %llu, "
         "\"unreachable\": %llu, \"max_queue_depth\": %zu, "
         "\"degraded_serves\": %llu, \"table_size\": %zu}%s\n",
         s, u64(sr.queries), u64(sr.batched_queries), u64(sr.unreachable),
         sr.max_queue_depth, u64(sr.degraded_serves), sr.table_size,
         s + 1 < per_shard.size() ? "," : "");
  }
  emit("  ]\n");
  emit("}\n");
  return out;
}

}  // namespace fabric
