// Fabric traffic phase (DESIGN.md §17): replays a slice of the storm
// schedule as data flows over a leaf–spine Clos fabric with ECMP placement,
// multi-hop DCQCN, per-tenant rate limiters, and scenario presets (incast
// fan-in, elephant/mice, spine outage).
//
// The phase is a pure function of (config, schedule): it runs on a fresh
// single-threaded event loop after the storm, consumes no randomness beyond
// DCQCN's own seeded marking stream, and produces the same TrafficReport
// from both storm engines at any thread count — which is what lets the CI
// fabric job byte-diff 1-thread against 4-thread runs.
#pragma once

#include "fabric/scale.h"
#include "fabric/storm_schedule.h"

namespace fabric {

TrafficReport run_traffic_phase(const ScaleConfig& cfg,
                                const storm::StormSchedule& sched);

}  // namespace fabric
