// Central calibration of the simulated testbed — one place for every
// latency/cost constant, each anchored to a number in the paper.
//
// Testbed shape (Table 3): two servers, Mellanox CX-3 Pro 40 Gbps RoCE,
// direct-connected; 96 GB DRAM; QEMU VMs; Docker containers; OVS+VXLAN
// (VMs) / Weave (containers) virtual TCP networks.
#pragma once

#include "masq/backend.h"
#include "baselines/freeflow.h"
#include "rnic/costs.h"
#include "sim/time.h"
#include "verbs/driver_costs.h"
#include "virtio/virtqueue.h"

namespace fabric {

struct Calibration {
  // ---- physical fabric (Table 3) ----
  double link_gbps = 40.0;
  sim::Time link_prop_oneway = sim::nanoseconds(200);
  std::uint64_t host_dram_bytes = 96ull << 30;
  int num_vfs = 8;  // non-ARI PCIe exposes 8 VFs (Table 5)

  // ---- instances ----
  std::uint64_t vm_mem_bytes = 512ull << 20;  // Table 5 scalability setup
  std::uint64_t vm_overhead_bytes = 100ull << 20;
  double vm_compute_overhead = 1.18;  // Fig. 23 FlatMap gap

  // ---- virtual TCP overlay ----
  sim::Time oob_oneway = sim::microseconds(25);

  // ---- SDN control plane (§3.3.1 / §4.2.3) ----
  sim::Time controller_rtt = sim::microseconds(100);
  sim::Time mapping_cache_hit = sim::microseconds(2);

  // ---- per-layer cost models (anchored in their own headers) ----
  rnic::DataPathCosts data_costs;        // Fig. 8/9/18/21 anchors
  verbs::DriverCosts driver_costs;       // Table 1 / Fig. 15 anchors
  virtio::ChannelCosts virtio_costs;     // Table 1 "w/ virtio" (+20 us)
  baselines::FfCosts freeflow_costs;     // Fig. 8b/15/21 anchors
  sim::Time masq_command_overhead = sim::microseconds(2);  // Fig. 16b
  masq::RConntrackCosts conntrack_costs; // Table 4
};

}  // namespace fabric
