// Testbed factory: assembles the paper's evaluation setup (Fig. 7) for any
// of the four candidates and hands out candidate-agnostic verbs::Context
// handles, so every application and benchmark runs unmodified on all four.
//
//   fabric::TestbedConfig cfg;
//   cfg.candidate = fabric::Candidate::kMasq;
//   fabric::Testbed bed(loop, cfg);
//   bed.add_instances(2);
//   verbs::Context& client = bed.ctx(0);   // on host 0
//   verbs::Context& server = bed.ctx(1);   // on host 1
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/freeflow.h"
#include "baselines/host_context.h"
#include "baselines/sriov_context.h"
#include "check/invariant.h"
#include "fabric/calibration.h"
#include "hyp/host.h"
#include "hyp/instance.h"
#include "masq/backend.h"
#include "masq/frontend.h"
#include "masq/migrate.h"
#include "net/fluid.h"
#include "net/topology.h"
#include "overlay/oob.h"
#include "rnic/device.h"
#include "sdn/controller.h"
#include "sim/event_loop.h"
#include "sim/faults.h"
#include "sim/flat_map.h"
#include "verbs/api.h"

namespace fabric {

enum class Candidate { kHostRdma, kSriov, kFreeFlow, kMasq };

const char* to_string(Candidate c);
inline constexpr Candidate kAllCandidates[] = {
    Candidate::kHostRdma, Candidate::kFreeFlow, Candidate::kSriov,
    Candidate::kMasq};

struct TestbedConfig {
  Candidate candidate = Candidate::kMasq;
  int num_hosts = 2;
  std::uint32_t default_vni = 100;
  // Fig. 9: map MasQ tenants to the PF instead of VFs.
  bool masq_use_pf = false;
  // Ablation: RConnrename queries the controller on every connection.
  bool masq_disable_cache = false;
  Calibration cal;
  // Chaos testing: when any fault probability or SDN outage window is set
  // (faults.any()), the testbed builds a seeded FaultPlane and wires it
  // into every MasQ backend, each frontend's virtqueue, and the SDN
  // controller's reachability. Fault-free configs build no plane at all,
  // so default runs keep a bit-identical event stream.
  sim::FaultConfig faults;
  std::uint64_t fault_seed = 1;
  // Control-path retry policy and degraded-mode staleness bound shared by
  // every MasQ backend/frontend pair.
  masq::RetryPolicy retry;
  sim::Time cache_staleness_bound = sim::seconds(5);
  // SDN control-plane sharding (DESIGN.md §12). Defaults model the flat
  // pre-sharding controller exactly: one shard, infinitely fast query
  // service, pass-through host agents.
  std::size_t sdn_shards = 1;
  // Per-key occupancy at each shard's FIFO query service (0 = pure RTT).
  sim::Time sdn_query_service = 0;
  // Host-agent resolve batching window (0 = pass-through).
  sim::Time sdn_resolve_batch_window = 0;
  // Warm-path connection pool (DESIGN.md §14). Disabled by default: no
  // pool is constructed and the cold path stays bit-identical.
  masq::WarmPoolConfig masq_warm;
  // Runtime invariant auditing (src/check). Defaults to the MASQ_CHECK
  // environment switch, so `MASQ_CHECK=1 ctest` audits every testbed-based
  // test without code changes. When on, the MasQ candidate registers the
  // qp-state / vq-ring / cache / conntrack auditors and the event loop
  // audits every `check_audit_every` events; violations throw out of
  // EventLoop::run(). When off, no registry exists and the loop pays one
  // branch per event.
  bool check_invariants = check::env_enabled();
  std::uint64_t check_audit_every = 512;
  // Leaf–spine Clos fabric between the hosts (DESIGN.md §17). Unset by
  // default: frames cross only the two NIC links — the legacy direct-link
  // wire — and every golden number stays bit-exact. When set, `hosts` is
  // overridden with num_hosts and every inter-host frame additionally
  // crosses the FabricTopology path chosen by ECMP over its QPN 5-tuple.
  std::optional<net::FabricConfig> topology;
};

class Testbed : public rnic::FabricRouter {
 public:
  Testbed(sim::EventLoop& loop, TestbedConfig config);
  ~Testbed() override;

  // Adds one instance (VM / container / host process, by candidate) on
  // host `i % num_hosts`, joined to tenant `vni`. Returns the instance
  // index, or nullopt when the platform cannot host it (out of VFs for
  // SR-IOV, out of DRAM for MasQ — the Table 5 limiters).
  std::optional<std::size_t> add_instance(
      std::optional<std::uint32_t> vni = std::nullopt);
  // Adds n instances; throws if any fails (benchmark convenience).
  void add_instances(int n);

  std::size_t size() const { return instances_.size(); }
  verbs::Context& ctx(std::size_t i) { return *instances_.at(i)->ctx; }
  net::Ipv4Addr instance_vip(std::size_t i) const {
    return instances_.at(i)->vip;
  }
  std::uint32_t instance_vni(std::size_t i) const {
    return instances_.at(i)->vni;
  }
  std::size_t instance_host(std::size_t i) const {
    return instances_.at(i)->host_idx;
  }

  sim::EventLoop& loop() { return loop_; }
  net::FluidNet& fluid() { return fluid_; }
  overlay::VirtualNetwork& vnet() { return vnet_; }
  sdn::Controller& controller() { return controller_; }
  // Null unless the config enabled fault injection (config.faults.any()).
  sim::FaultPlane* faults() { return fault_plane_.get(); }
  // Null unless the config enabled invariant auditing (check_invariants).
  // Tests use it to run explicit audit points (e.g. "quiesce" after a
  // drained run) or to inspect recorded violations under kRecord policy.
  check::InvariantRegistry* checks() { return checks_.get(); }
  hyp::Host& host(std::size_t i) { return *hosts_.at(i); }
  rnic::RnicDevice& device(std::size_t host_idx) {
    return hosts_.at(host_idx)->rnic(0);
  }
  std::size_t num_hosts() const { return hosts_.size(); }
  const TestbedConfig& config() const { return config_; }

  // MasQ-only handles (throws for other candidates).
  masq::Backend& masq_backend(std::size_t host_idx);
  baselines::FfRouter& ffr(std::size_t host_idx);

  // Tenant policy shortcuts.
  overlay::SecurityPolicy& policy(std::uint32_t vni) {
    return vnet_.policy(vni);
  }
  // Installs allow-all firewall + security-group rules for a tenant.
  void allow_all(std::uint32_t vni);

  // App-assisted live migration (§5, MasQ only): moves instance `i` to
  // `target_host`, preserving its tenant identity (vIP, MAC, VNI). The
  // caller must have torn down the instance's RDMA resources first (the
  // application falls back to TCP during the blackout). vBond re-registers
  // the unchanged vGID against the new host's physical GID and the
  // controller pushes the update to every host cache. ctx(i) is replaced.
  [[nodiscard]] rnic::Status migrate_instance(std::size_t i,
                                              std::size_t target_host);

  // Transparent live migration (DESIGN.md §15, MasQ only): moves instance
  // `i` — guest RAM, RNIC objects, RConntrack rows, virtio session — to
  // `target_host` while established connections survive under their
  // original QPNs. The application keeps its verbs::Context& and observes
  // only added latency; peers observe the same. `corrupt` is the
  // auditor-test backdoor: it mutates the QP snapshots in flight so the
  // no-WQE-lost digest compare must fire.
  enum class MigrationCorruption { kNone, kDropWqe, kDuplicateWqe };
  sim::Task<rnic::Status> migrate_vm(
      std::size_t i, std::size_t target_host,
      masq::MigrationCosts costs = {},
      MigrationCorruption corrupt = MigrationCorruption::kNone);
  // Report of the most recent migrate_vm run (value-initialized if none).
  const masq::MigrationReport& last_migration_report() const {
    return last_migration_report_;
  }

  // rnic::FabricRouter: route underlay IPs to devices.
  rnic::RnicDevice* device_by_ip(net::Ipv4Addr underlay_ip) override;
  // rnic::FabricRouter: leaf/spine hops between two hosts (empty without a
  // configured topology, keeping the direct-link event stream bit-exact).
  std::vector<net::LinkId> fabric_path(net::Ipv4Addr src_ip,
                                       net::Ipv4Addr dst_ip, rnic::Qpn src_qpn,
                                       rnic::Qpn dst_qpn) override;
  // Null unless config.topology was set.
  net::FabricTopology* topology() { return fabric_.get(); }

 private:
  struct Instance {
    std::size_t host_idx = 0;
    std::uint32_t vni = 0;
    net::Ipv4Addr vip;
    std::unique_ptr<hyp::Vm> vm;
    std::unique_ptr<hyp::Container> container;
    overlay::OobEndpoint* oob = nullptr;
    std::unique_ptr<verbs::Context> ctx;
  };

  net::Ipv4Addr next_vip(std::uint32_t vni);
  // Programs SR-IOV tunnel tables for a newly added instance.
  void program_tunnels_for(const Instance& inst);

  sim::EventLoop& loop_;
  TestbedConfig config_;
  net::FluidNet fluid_;
  overlay::VirtualNetwork vnet_;
  sdn::Controller controller_;
  // Declared before hosts/backends: they hold raw pointers into the plane
  // and must be destroyed first.
  std::unique_ptr<sim::FaultPlane> fault_plane_;
  // Auditors capture references into hosts/backends/instances below; the
  // destructor detaches + runs the final quiesce audit before any of them
  // die, and declaration order makes the registry outlive its subjects.
  std::unique_ptr<check::InvariantRegistry> checks_;
  std::vector<std::unique_ptr<hyp::Host>> hosts_;
  std::vector<std::unique_ptr<masq::Backend>> backends_;    // per host (MasQ)
  std::vector<std::unique_ptr<baselines::FfRouter>> ffrs_;  // per host (FF)
  std::vector<std::unique_ptr<Instance>> instances_;
  sim::FlatMap<net::Ipv4Addr, rnic::RnicDevice*> by_underlay_ip_;
  sim::FlatMap<net::Ipv4Addr, std::size_t> host_of_ip_;
  std::unique_ptr<net::FabricTopology> fabric_;  // null: direct-link wire
  sim::FlatMap<std::uint32_t, std::uint32_t> vip_counter_;  // per vni
  std::vector<int> vf_in_use_;  // per host (SR-IOV assignment)
  masq::MigrationReport last_migration_report_;
};

}  // namespace fabric
