// Connection-storm scale harness (DESIGN.md §12): drives the sharded SDN
// control plane — Controller shards + per-host HostAgents — with a
// T-tenant × H-host × V-VMs/host workload, WITHOUT building the full
// per-VM RNIC/virtio stack (a 10k-VM testbed would spend all its wall
// clock on data-plane machinery this harness does not measure).
//
// What it models, per connection attempt:
//   resolve (host agent / cache / shard query)  +  a fixed "verb ladder"
//   charge standing in for the rest of Fig. 15's setup sequence.
// What it measures: connection-setup throughput, p50/p99/max setup
// latency, resolve-cache hit rate, per-shard queue depth and query
// counts, and per-shard degraded serves under a partition outage.
//
// Everything — peer choice, wave jitter, churn times — derives from one
// seeded sim::Rng and virtual time, so a (config, seed) pair maps to
// exactly one event stream and one report: `masq_scaletest` runs are
// byte-identical across machines (the determinism test diffs two of
// them), and report JSON is emitted with fixed field order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace fabric {

// Fabric traffic phase (DESIGN.md §17): after the control-plane storm, a
// slice of the drawn connection schedule is replayed as data flows over a
// leaf–spine Clos fabric (net::FabricTopology) with per-link max-min
// sharing, ECMP placement, multi-hop DCQCN, and optional per-tenant rate
// limiters. The phase is a pure function of (config, schedule) and runs on
// its own single-threaded loop, so both storm engines produce the same
// block at any thread count.
struct TrafficConfig {
  bool enabled = false;
  // Topology. leaves == 0 selects direct mode: flows cross only the two
  // per-host NIC links — the legacy 2-server wire generalized to H hosts —
  // which is what the degenerate-equivalence sweep diffs a 1-leaf fabric
  // against.
  std::size_t leaves = 0;
  std::size_t spines = 1;
  double host_gbps = 25.0;   // NIC and host<->leaf link capacity
  double spine_gbps = 40.0;  // leaf<->spine link capacity
  // Workload: the first `flows` wave connections become data flows.
  //   pairs  — src/dst hosts straight from the schedule;
  //   incast — the first `incast_fanin` flows are redirected at host 0
  //            (the fan-in victim); the rest stay background pairs.
  std::string pattern = "pairs";
  std::size_t flows = 256;
  std::size_t incast_fanin = 32;
  std::uint64_t flow_kb = 64;
  // Elephant/mice mix: every Nth flow (by schedule index — no extra random
  // draws) carries elephant_kb instead of flow_kb. 0 = mice only.
  std::size_t elephant_every = 0;
  std::uint64_t elephant_kb = 4096;
  bool dcqcn = true;
  // Per-tenant aggregate rate limiter (Fig. 12 semantics), modeled as one
  // virtual link per tenant prepended to its flows' paths. 0 = off.
  double tenant_gbps = 0;
  // Leaf-affine (tenant-packed) host placement instead of the scattered
  // schedule layout (sdn::leaf_affine_host) — the placement ablation.
  bool placement = false;
  // Spine outage: spine `fail_spine`'s links drop to zero capacity over
  // [fail_from, fail_until) — flows crossing it stall and must recover.
  int fail_spine = -1;
  sim::Time fail_from = 0;
  sim::Time fail_until = 0;
};

struct TrafficReport {
  bool enabled = false;
  std::uint64_t flows = 0;
  std::uint64_t total_bytes = 0;
  double elapsed_ms = 0;  // first start to last completion
  double agg_gbps = 0;    // total_bytes over elapsed
  // Flow-completion times (µs).
  double fct_p50_us = 0;
  double fct_p99_us = 0;
  double fct_max_us = 0;
  // ECMP determinism: FNV-1a fold of every flow's (index, spine) choice;
  // -1 folds for intra-leaf flows. Identical across reruns and engines.
  std::uint64_t ecmp_fold = 0;
  std::size_t spine_crossings = 0;  // flows that traversed a spine
  // Congestion outcomes.
  std::uint64_t ecn_marks = 0;          // CNPs delivered by DCQCN
  std::uint64_t dcqcn_recoveries = 0;   // completed post-cut recoveries
  std::uint64_t throttled_flows = 0;    // flows that took >= 1 mark
  double peak_spine_util = 0;   // max leaf<->spine utilization sampled
  double peak_tenant_gbps = 0;  // max per-tenant aggregate rate sampled
  // NOT serialized (differs between direct and degenerate-fabric runs the
  // equivalence sweep byte-diffs): echoed topology shape.
  std::size_t hosts = 0;
  std::size_t leaves = 0;
  std::size_t spines = 0;
};

struct ScaleConfig {
  // Topology: tenants × hosts × VMs-per-host. Total VMs = hosts * vms.
  std::size_t tenants = 10;
  std::size_t hosts = 16;
  std::size_t vms_per_host = 625;  // 16 * 625 = the 10k-VM storm
  // Each VM opens this many connections per wave, to seeded-random peers
  // of its own tenant.
  std::size_t conns_per_vm = 2;
  std::size_t waves = 3;
  sim::Time wave_gap = sim::milliseconds(50);
  // Connection starts are jittered uniformly over this window within the
  // wave (a storm front, not a single synchronized tick).
  sim::Time spread = sim::milliseconds(10);

  // Control-plane geometry (mirrors TestbedConfig's sdn_* knobs).
  std::size_t shards = 8;
  sim::Time query_rtt = sim::microseconds(100);
  sim::Time query_service = sim::microseconds(1);
  sim::Time batch_window = sim::microseconds(5);
  std::size_t max_batch = 64;
  sim::Time cache_hit_cost = sim::microseconds(2);
  sim::Time staleness_bound = sim::seconds(5);
  // Stand-in for the rest of the connection-setup ladder (reg_mr..RTS
  // minus the resolve), so latency and throughput have Fig. 15-shaped
  // magnitudes without simulating every verb.
  sim::Time ladder_cost = sim::microseconds(30);

  // Churn: vBond IP changes (unregister + re-register under a new vGID)
  // and security-rule resets (every VM of one tenant re-resolves its
  // peers), both at seeded-random times across the run.
  std::size_t ip_changes = 0;
  std::size_t rule_resets = 0;

  // Warm connection-setup path (DESIGN.md §14), modeled analytically so
  // the warm-off event stream stays bit-identical:
  //   * every VM boots with `warm_pool` pre-staged QP/CQ ladders (tokens);
  //     a pooled setup pays warm_ladder_cost instead of ladder_cost, and
  //     tokens restock lazily one per warm_refill of elapsed virtual time
  //     (the background refill, with no timer events of its own);
  //   * a completed (src,dst) pair is parked for warm_reuse_ttl; a repeat
  //     connect inside the TTL to the SAME peer generation reuses the RTS
  //     QP for warm_reuse_cost — no resolve, no ladder. A churned peer
  //     (generation bump) invalidates the parked pair lazily;
  //   * host agents run with speculative_prefill, so controller pushes
  //     land mappings in every cache ahead of the first miss.
  bool warm = false;
  std::size_t warm_pool = 4;
  sim::Time warm_refill = sim::microseconds(50);
  sim::Time warm_reuse_ttl = sim::milliseconds(5);
  sim::Time warm_ladder_cost = sim::microseconds(10);  // RTR→RTS only
  sim::Time warm_reuse_cost = sim::microseconds(2);    // hello round only

  // Partition outage: shard `down_shard` (when >= 0) is unreachable over
  // [down_from, down_until). Proves degradation stays scoped.
  int down_shard = -1;
  sim::Time down_from = 0;
  sim::Time down_until = 0;

  std::uint64_t seed = 1;

  // Mix every executed event into the loop's FNV-1a trace hash (reported
  // via ScaleReport::trace_hash). Costs a few percent of wall clock; the
  // determinism tests turn it on to prove thread-count invariance.
  bool trace = false;

  // Fabric traffic phase appended after the storm (TrafficConfig above).
  // Disabled by default; the "topology" JSON block is emitted only when
  // enabled, so traffic-off reports stay byte-identical to the legacy
  // schema.
  TrafficConfig traffic;

  // Arm the partition-ownership auditor (check::PartitionOwnershipAuditor)
  // in the partitioned engine: every loop access and tagged hot-table
  // access is validated against the DESIGN.md §16 ownership model, and a
  // cross-partition access outside the barrier throws with partition +
  // thread diagnostics. MASQ_CHECK=1 in the environment arms it too. The
  // auditor observes only — reports and trace hashes are byte-identical
  // armed or not (and `check` is deliberately NOT serialized by json()).
  bool check = false;
};

struct ShardReport {
  std::uint64_t queries = 0;           // lookups this shard answered
  std::uint64_t batched_queries = 0;   // subset arriving via query_batch
  std::uint64_t unreachable = 0;       // lookups bounced off an outage
  std::size_t max_queue_depth = 0;     // service-queue high-water mark
  std::uint64_t degraded_serves = 0;   // stale-but-bounded cache serves
  std::size_t table_size = 0;          // directory slice at end of run
};

struct ScaleReport {
  // Workload shape (echoed so a report is self-describing).
  std::size_t tenants = 0;
  std::size_t hosts = 0;
  std::size_t vms = 0;
  std::size_t shards = 0;
  std::uint64_t seed = 0;

  // Outcomes.
  std::uint64_t attempted = 0;
  std::uint64_t ok = 0;          // fresh resolve (kOk)
  std::uint64_t degraded = 0;    // served stale-but-bounded (kOkDegraded)
  std::uint64_t unavailable = 0; // shard down, nothing fresh enough
  std::uint64_t not_found = 0;   // peer unregistered mid-storm

  // Latency (µs) over completed (ok + degraded) setups.
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
  // Throughput over the storm's virtual duration.
  double elapsed_ms = 0;
  double kconn_per_s = 0;

  // Cache tier, aggregated over hosts.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t coalesced = 0;
  double hit_rate = 0;
  std::uint64_t agent_batches = 0;
  std::uint64_t agent_batched_keys = 0;

  // Warm-path split of completed setups (cfg.warm only; the "warm" JSON
  // block is emitted only when warm_enabled, so warm-off reports stay
  // byte-identical to the pre-warm-path engine).
  bool warm_enabled = false;
  std::uint64_t warm_pooled = 0;    // paid warm_ladder_cost (token hit)
  std::uint64_t warm_reused = 0;    // paid warm_reuse_cost (parked pair)
  std::uint64_t warm_cold = 0;      // pool empty: full ladder_cost
  std::uint64_t warm_prefills = 0;  // mappings pushed ahead of any miss

  // Fabric traffic phase (cfg.traffic.enabled only; the "topology" block
  // is emitted only when it ran).
  TrafficReport traffic;

  std::vector<ShardReport> per_shard;

  // ---- engine observability, NOT serialized by json() ----
  // Kept out of the report JSON so the single-loop and partitioned
  // engines, and runs at different thread counts, can be byte-diffed on
  // json() alone. sim_events and trace_hash are still deterministic per
  // engine (the scaletest tool prints them separately).
  std::uint64_t sim_events = 0;   // events executed across all loops
  std::uint64_t trace_hash = 0;   // FNV fold; 0 unless cfg.trace was set
  std::size_t engine_threads = 0; // worker threads; 0 = single-loop engine

  // Fixed field order, fixed formatting, no timestamps — two identical
  // (config, seed) runs serialize to byte-identical JSON.
  std::string json() const;
};

ScaleReport run_scale_storm(const ScaleConfig& cfg);

// Partition-parallel engine (DESIGN.md §13): cfg.shards partitions, each
// with its own event loop and replica control plane, advanced in
// rtt-width windows on `threads` workers with a deterministic
// (send_time, partition, seq) merge of cross-partition traffic. The
// report — and, with cfg.trace set, the trace hash — is byte-identical
// for every `threads` value. Requires batching (cfg.batch_window > 0 and
// cfg.query_rtt > 0); falls back to run_scale_storm otherwise.
ScaleReport run_scale_storm_parallel(const ScaleConfig& cfg,
                                     std::size_t threads);

}  // namespace fabric
