// Compute instances: QEMU virtual machines and Docker-style containers.
//
// A Vm reserves its RAM from host DRAM at boot (the Table-5 "limited by
// host memory" resource) and owns the guest half of the Appendix-B
// address-translation chain: GVA -> GPA -> HVA -> HPA. Guest buffers are
// demand-mapped: the reservation is contiguous, so per-buffer page-table
// entries are created only for memory applications actually use.
//
// A Container shares the host kernel: its "guest" space maps straight onto
// host physical pages, with only an accounting limit (Docker runtime
// options, Table 3).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hyp/host.h"
#include "net/addr.h"
#include "sim/flat_map.h"
#include "sim/time.h"

namespace hyp {

class Vm {
 public:
  struct Config {
    std::string name = "vm";
    std::uint64_t mem_bytes = 512ull << 20;
    // QEMU/KVM bookkeeping charged to the host per VM (page tables, device
    // models, vhost rings). Anchor: Table 5 — 160 x 512 MB VMs exhaust a
    // 96 GB host, i.e. ~100 MiB of overhead per VM.
    std::uint64_t qemu_overhead_bytes = 100ull << 20;
    int vcpus = 1;
    std::uint32_t vni = 0;           // tenant id
    net::Ipv4Addr vip;               // virtual IP of the vEth
    net::MacAddr mac;
    // CPU-bound work runs this much slower than on the host (VM exit /
    // scheduling overheads). Anchor: Fig. 23 — FlatMap stage slower on
    // MasQ/SR-IOV (VMs) than Host-RDMA/FreeFlow (host/container).
    double compute_overhead = 1.18;
  };

  // Throws std::bad_alloc when the host cannot back the VM (Table 5).
  Vm(Host& host, Config config);
  ~Vm();

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  Host& host() { return host_; }
  const Config& config() const { return config_; }

  mem::AddressSpace& gva() { return gva_; }
  mem::AddressSpace& gpa() { return gpa_; }

  // Allocates a guest buffer; returns its GVA. The full chain down to HPA
  // is mapped so drivers can pin and translate it.
  mem::Addr alloc_guest_buffer(std::uint64_t len);
  void free_guest_buffer(mem::Addr gva_addr, std::uint64_t len);

  // Live-migration restore: allocates a guest buffer at the exact GVA it
  // held on the source host, so registered MRs and application pointers
  // survive the move unchanged. The GPA/HVA/HPA levels are fresh — MRs are
  // re-pinned and their MTTs re-resolved after the restore. Throws
  // std::bad_alloc if the GVA range is already taken.
  void alloc_guest_buffer_at(mem::Addr gva_addr, std::uint64_t len);

  // Live buffers (GVA -> length), in allocation order. A migration walks
  // this to copy guest RAM content to the destination VM.
  const sim::FlatMap<mem::Addr, std::uint64_t>& guest_buffers() const {
    return buffers_;
  }

  void write_guest(mem::Addr gva_addr, std::span<const std::uint8_t> in) {
    gva_.write(gva_addr, in);
  }
  void read_guest(mem::Addr gva_addr, std::span<std::uint8_t> out) {
    gva_.read(gva_addr, out);
  }

  // Maps a device BAR (by HPA) into the guest application's address space
  // (Appendix B.1, doorbell flow). Returns the GVA.
  mem::Addr map_mmio_into_guest(mem::Addr bar_hpa, std::uint64_t len);

  // Scales a CPU-bound duration by the VM overhead factor.
  sim::Time compute(sim::Time host_time) const {
    return static_cast<sim::Time>(static_cast<double>(host_time) *
                                  config_.compute_overhead);
  }

  std::uint64_t guest_bytes_allocated() const {
    return gpa_alloc_.bytes_allocated();
  }

 private:
  Host& host_;
  Config config_;
  mem::Addr hpa_base_;  // contiguous DRAM reservation for VM RAM
  mem::Addr hva_base_;  // QEMU's VA window over the reservation
  mem::AddressSpace gpa_;
  mem::AddressSpace gva_;
  mem::RegionAllocator gpa_alloc_;
  mem::RegionAllocator gva_alloc_;
  mem::RegionAllocator gpa_mmio_alloc_;
  sim::FlatMap<mem::Addr, std::uint64_t> buffers_;  // live GVA buffers
  // BAR windows mapped into this VM's HVA slice (hva, len): unmapped and
  // returned to the host allocator on teardown.
  std::vector<std::pair<mem::Addr, std::uint64_t>> mmio_maps_;
};

class Container {
 public:
  struct Config {
    std::string name = "ctr";
    std::uint64_t mem_limit_bytes = 32ull << 30;
    int cpus = 14;
    std::uint32_t vni = 0;
    net::Ipv4Addr vip;  // Weave-style overlay address
  };

  Container(Host& host, Config config);
  ~Container() = default;

  Host& host() { return host_; }
  const Config& config() const { return config_; }

  // Container processes live in a host VA space (no nested translation).
  mem::AddressSpace& va() { return va_; }

  mem::Addr alloc_buffer(std::uint64_t len);

  // No virtualization penalty for CPU work.
  sim::Time compute(sim::Time host_time) const { return host_time; }

 private:
  Host& host_;
  Config config_;
  mem::AddressSpace va_;
  mem::RegionAllocator va_alloc_;
  std::uint64_t used_ = 0;
};

}  // namespace hyp
