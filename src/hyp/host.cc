#include "hyp/host.h"

namespace hyp {

namespace {
// Host kernel VA window for driver/FFR buffers and VM RAM mappings.
constexpr mem::Addr kHvaBase = 0x0000'5000'0000'0000ull;
constexpr mem::Addr kHvaWindow = mem::Addr{1} << 45;  // 32 TiB of VA
}  // namespace

Host::Host(sim::EventLoop& loop, net::FluidNet& net, std::string name,
           std::uint64_t dram_bytes)
    : loop_(loop),
      net_(net),
      name_(std::move(name)),
      phys_(dram_bytes),
      hva_(name_ + "-hva", &phys_),
      hva_alloc_(kHvaBase, kHvaWindow) {}

mem::Addr Host::alloc_host_buffer(std::uint64_t len) {
  len = mem::page_ceil(len);
  const mem::Addr hpa = phys_.alloc_pages(len / mem::kPageSize);
  const mem::Addr hva = hva_alloc_.alloc(len);
  hva_.map(hva, hpa, len);
  return hva;
}

void Host::free_host_buffer(mem::Addr hva, std::uint64_t len) {
  len = mem::page_ceil(len);
  const mem::Addr hpa = hva_.translate_or_throw(hva);
  hva_.unmap(hva, len);
  hva_alloc_.free(hva, len);
  phys_.free_pages(hpa, len / mem::kPageSize);
}

rnic::RnicDevice& Host::add_rnic(rnic::DeviceConfig config) {
  rnics_.push_back(
      std::make_unique<rnic::RnicDevice>(loop_, net_, phys_, std::move(config)));
  return *rnics_.back();
}

}  // namespace hyp
