#include "hyp/instance.h"

#include <new>
#include <stdexcept>

namespace hyp {

namespace {
constexpr mem::Addr kGvaBase = 0x0000'7f00'0000'0000ull;
constexpr mem::Addr kGvaWindow = mem::Addr{1} << 40;
// MMIO windows sit in guest-physical space above RAM.
constexpr mem::Addr kGpaMmioGap = mem::Addr{1} << 36;
}  // namespace

Vm::Vm(Host& host, Config config)
    : host_(host),
      config_(std::move(config)),
      hpa_base_(0),
      hva_base_(0),
      gpa_(config_.name + "-gpa", &host.hva()),
      gva_(config_.name + "-gva", &gpa_),
      gpa_alloc_(0, mem::page_ceil(config_.mem_bytes)),
      gva_alloc_(kGvaBase, kGvaWindow),
      gpa_mmio_alloc_(mem::page_ceil(config_.mem_bytes) + kGpaMmioGap,
                      mem::Addr{1} << 32) {
  const mem::Addr ram = mem::page_ceil(config_.mem_bytes);
  const mem::Addr overhead = mem::page_ceil(config_.qemu_overhead_bytes);
  // Reserve VM RAM plus hypervisor bookkeeping from host DRAM. Throws
  // std::bad_alloc if the host is out of memory — the Table 5 limiter.
  hpa_base_ = host_.phys().alloc_pages((ram + overhead) / mem::kPageSize);
  hva_base_ = host_.hva_alloc().alloc(ram);
  // The QEMU mapping HVA -> HPA for VM RAM is established lazily alongside
  // guest allocations; the reservation above is the accounting.
}

Vm::~Vm() {
  const mem::Addr ram = mem::page_ceil(config_.mem_bytes);
  const mem::Addr overhead = mem::page_ceil(config_.qemu_overhead_bytes);
  // The gva_/gpa_ levels die with the Vm, but host_.hva() outlives it:
  // tear down the HVA entries for every live guest buffer and BAR window,
  // or the next VM booted into the reused window maps on top of them.
  for (const auto& [gva_addr, len] : buffers_) {
    const mem::Addr gpa_addr = gva_.translate_or_throw(gva_addr);
    const mem::Addr hva_addr = gpa_.translate_or_throw(gpa_addr);
    host_.hva().force_unmap(hva_addr, len);
  }
  for (const auto& [hva_addr, len] : mmio_maps_) {
    host_.hva().force_unmap(hva_addr, len);
    host_.hva_alloc().free(hva_addr, len);
  }
  host_.phys().free_pages(hpa_base_, (ram + overhead) / mem::kPageSize);
  host_.hva_alloc().free(hva_base_, ram);
}

mem::Addr Vm::alloc_guest_buffer(std::uint64_t len) {
  len = mem::page_ceil(len);
  const mem::Addr gpa_addr = gpa_alloc_.alloc(len);
  const mem::Addr gva_addr = gva_alloc_.alloc(len);
  // VM RAM is contiguous: GPA x lives at HVA hva_base_+x and HPA
  // hpa_base_+x.
  const mem::Addr hva_addr = hva_base_ + gpa_addr;
  const mem::Addr hpa_addr = hpa_base_ + gpa_addr;
  host_.hva().map(hva_addr, hpa_addr, len);
  gpa_.map(gpa_addr, hva_addr, len);
  gva_.map(gva_addr, gpa_addr, len);
  buffers_[gva_addr] = len;
  return gva_addr;
}

void Vm::alloc_guest_buffer_at(mem::Addr gva_addr, std::uint64_t len) {
  len = mem::page_ceil(len);
  // Same chain as alloc_guest_buffer, except the GVA is dictated by the
  // caller: only the guest-virtual level must match the source VM; the
  // levels below are fresh on this host.
  const mem::Addr gpa_addr = gpa_alloc_.alloc(len);
  gva_alloc_.reserve(gva_addr, len);
  const mem::Addr hva_addr = hva_base_ + gpa_addr;
  const mem::Addr hpa_addr = hpa_base_ + gpa_addr;
  host_.hva().map(hva_addr, hpa_addr, len);
  gpa_.map(gpa_addr, hva_addr, len);
  gva_.map(gva_addr, gpa_addr, len);
  buffers_[gva_addr] = len;
}

void Vm::free_guest_buffer(mem::Addr gva_addr, std::uint64_t len) {
  len = mem::page_ceil(len);
  const mem::Addr gpa_addr = gva_.translate_or_throw(gva_addr);
  const mem::Addr hva_addr = gpa_.translate_or_throw(gpa_addr);
  gva_.unmap(gva_addr, len);
  gpa_.unmap(gpa_addr, len);
  host_.hva().unmap(hva_addr, len);
  gva_alloc_.free(gva_addr, len);
  gpa_alloc_.free(gpa_addr, len);
  buffers_.erase(gva_addr);
}

mem::Addr Vm::map_mmio_into_guest(mem::Addr bar_hpa, std::uint64_t len) {
  len = mem::page_ceil(len);
  if (!host_.phys().is_mmio(bar_hpa)) {
    throw std::invalid_argument("map_mmio_into_guest: not an MMIO address");
  }
  const mem::Addr hva_addr = host_.hva_alloc().alloc(len);
  host_.hva().map(hva_addr, bar_hpa, len);
  mmio_maps_.emplace_back(hva_addr, len);
  const mem::Addr gpa_addr = gpa_mmio_alloc_.alloc(len);
  gpa_.map(gpa_addr, hva_addr, len);
  const mem::Addr gva_addr = gva_alloc_.alloc(len);
  gva_.map(gva_addr, gpa_addr, len);
  return gva_addr;
}

Container::Container(Host& host, Config config)
    : host_(host),
      config_(std::move(config)),
      va_(config_.name + "-va", &host.phys()),
      va_alloc_(kGvaBase, kGvaWindow) {}

mem::Addr Container::alloc_buffer(std::uint64_t len) {
  len = mem::page_ceil(len);
  if (used_ + len > config_.mem_limit_bytes) throw std::bad_alloc();
  used_ += len;
  const mem::Addr hpa = host_.phys().alloc_pages(len / mem::kPageSize);
  const mem::Addr va = va_alloc_.alloc(len);
  va_.map(va, hpa, len);
  return va;
}

}  // namespace hyp
