// A physical server: DRAM (HostPhysMap), the host kernel's address space,
// and attached RNICs. VMs and containers are carved out of it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/address_space.h"
#include "mem/physical_memory.h"
#include "mem/region_allocator.h"
#include "net/fluid.h"
#include "rnic/device.h"
#include "sim/event_loop.h"

namespace hyp {

class Host {
 public:
  Host(sim::EventLoop& loop, net::FluidNet& net, std::string name,
       std::uint64_t dram_bytes);

  const std::string& name() const { return name_; }
  sim::EventLoop& loop() { return loop_; }
  net::FluidNet& net() { return net_; }
  mem::HostPhysMap& phys() { return phys_; }
  // The host kernel / QEMU virtual address space (HVA -> HPA).
  mem::AddressSpace& hva() { return hva_; }
  mem::RegionAllocator& hva_alloc() { return hva_alloc_; }

  // Allocates `len` bytes of fresh DRAM mapped into the host VA space;
  // returns the HVA. Throws std::bad_alloc when DRAM is exhausted.
  mem::Addr alloc_host_buffer(std::uint64_t len);
  void free_host_buffer(mem::Addr hva, std::uint64_t len);

  rnic::RnicDevice& add_rnic(rnic::DeviceConfig config);
  rnic::RnicDevice& rnic(std::size_t i = 0) { return *rnics_.at(i); }
  std::size_t num_rnics() const { return rnics_.size(); }

  std::uint64_t dram_bytes() const { return phys_.dram_size(); }
  std::uint64_t dram_used_bytes() const {
    return phys_.allocated_pages() * mem::kPageSize;
  }

 private:
  sim::EventLoop& loop_;
  net::FluidNet& net_;
  std::string name_;
  mem::HostPhysMap phys_;
  mem::AddressSpace hva_;
  mem::RegionAllocator hva_alloc_;
  std::vector<std::unique_ptr<rnic::RnicDevice>> rnics_;
};

}  // namespace hyp
