#include "rnic/device.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sim/log.h"

namespace rnic {

namespace {
// RC transport retry budget: if no ack arrives this long after the last
// byte left the wire, the requester retransmits; after kRcRetryCount
// resends it reports transport-retry-exceeded. Retransmissions rebuild
// the wire headers from the live QPC, so a peer whose address was renamed
// mid-flight (transparent live migration) is reached on the next attempt.
constexpr sim::Time kRetryTimeout = sim::milliseconds(4.0);
constexpr int kRcRetryCount = 7;  // IB retry_cnt default
// Doorbell BAR: one 8-byte register per live QP (slot-indexed), 64Ki slots.
constexpr mem::Addr kDoorbellBarBytes = 64 * 1024 * 8;

// FNV-1a, the migration-digest hash (deterministic, order-sensitive).
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
void fnv_mix(std::uint64_t* h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (i * 8)) & 0xff;
    *h *= kFnvPrime;
  }
}
}  // namespace

RnicDevice::RnicDevice(sim::EventLoop& loop, net::FluidNet& net,
                       mem::HostPhysMap& phys, DeviceConfig config)
    : loop_(loop), net_(net), phys_(phys), config_(std::move(config)),
      engine_(loop) {
  tx_link_ = net_.add_link(config_.link_gbps, config_.link_prop_oneway / 2);
  rx_link_ = net_.add_link(config_.link_gbps, config_.link_prop_oneway / 2);
  doorbell_bar_ = phys_.register_mmio(kDoorbellBarBytes, this);
  // Disjoint per-device ID ranges (migration keeps object IDs verbatim).
  const std::uint64_t id_base =
      (static_cast<std::uint64_t>(config_.id_space) << 20) + 1;
  next_pd_ = static_cast<PdId>(id_base);
  next_key_ = static_cast<Key>(id_base);
  next_cq_ = static_cast<Cqn>(id_base);
  next_qpn_ = static_cast<Qpn>(id_base);

  fns_.resize(1 + config_.num_vfs);
  fns_[kPf] = FunctionInfo{kPf, false, config_.mac, config_.ip, 0, false, 0};
  for (int i = 1; i <= config_.num_vfs; ++i) {
    FunctionInfo f;
    f.id = static_cast<FnId>(i);
    f.is_vf = true;
    // Each VF's hardware rate limiter is a virtual link, uncapped (line
    // rate) until QoS programs it.
    f.limiter_link = net_.add_link(config_.link_gbps, 0);
    fns_[i] = f;
  }
}

RnicDevice::~RnicDevice() {
  // Walk in QPN order: cancel_flow reallocates the fluid net, so the
  // cancellation order must not depend on hash-table layout.
  for (Qpn qpn : qp_numbers()) {
    for (net::FlowId fl : qps_.at(qpn)->active_flows) net_.cancel_flow(fl);
  }
}

std::vector<Qpn> RnicDevice::qp_numbers() const {
  std::vector<Qpn> out;
  out.reserve(qps_.size());
  for (const auto& [qpn, qp] :
       qps_) {  // masq-lint: allow(unordered-iter) sorted before use
    out.push_back(qpn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void RnicDevice::corrupt_qp_for_test(Qpn qpn, QpState state,
                                     const QpAttr& attr) {
  Qp* qp = find_qp(qpn);
  if (qp == nullptr) throw std::invalid_argument("corrupt_qp_for_test: no QP");
  qp->state = state;
  qp->attr = attr;
}

net::Gid RnicDevice::gid(FnId id) const {
  return net::Gid::from_ipv4(fns_.at(id).ip);
}

void RnicDevice::set_fn_address(FnId id, net::Ipv4Addr ip, net::MacAddr mac,
                                std::uint32_t vni, bool vxlan_offload) {
  FunctionInfo& f = fns_.at(id);
  f.ip = ip;
  f.mac = mac;
  f.vni = vni;
  f.vxlan_offload = vxlan_offload;
}

void RnicDevice::set_vf_rate_limit(FnId id, double gbps) {
  FunctionInfo& f = fns_.at(id);
  if (!f.is_vf) {
    throw std::invalid_argument("rate limiters exist per VF, not on the PF");
  }
  net_.set_link_capacity(f.limiter_link,
                         gbps == net::kUncapped ? config_.link_gbps : gbps);
}

double RnicDevice::vf_rate_limit_gbps(FnId id) const {
  return net_.link_capacity_gbps(fns_.at(id).limiter_link);
}

void RnicDevice::program_tunnel(net::Gid virt_gid, TunnelEntry entry) {
  tunnel_table_[virt_gid] = entry;
}

const TunnelEntry* RnicDevice::tunnel_lookup(net::Gid virt_gid,
                                             sim::Time* extra_cost) {
  auto it = tunnel_table_.find(virt_gid);
  if (it == tunnel_table_.end()) return nullptr;
  auto cit = tunnel_cache_.find(virt_gid);
  if (cit != tunnel_cache_.end()) {
    ++tunnel_hits_;
    *extra_cost += config_.costs.tunnel_cache_hit;
    tunnel_lru_.splice(tunnel_lru_.begin(), tunnel_lru_, cit->second);
  } else {
    ++tunnel_misses_;
    *extra_cost += config_.costs.tunnel_cache_miss;
    tunnel_lru_.push_front(virt_gid);
    tunnel_cache_[virt_gid] = tunnel_lru_.begin();
    if (static_cast<int>(tunnel_cache_.size()) >
        config_.tunnel_cache_capacity) {
      tunnel_cache_.erase(tunnel_lru_.back());
      tunnel_lru_.pop_back();
    }
  }
  return &it->second;
}

// ---------------------------------------------------------------------------
// Control bookkeeping.
// ---------------------------------------------------------------------------

Expected<PdId> RnicDevice::alloc_pd(FnId fn) {
  if (fn >= fns_.size()) return Expected<PdId>::error(Status::kInvalidArgument);
  const PdId pd = next_pd_++;
  pds_[pd] = fn;
  return Expected<PdId>::of(pd);
}

Status RnicDevice::dealloc_pd(PdId pd) {
  return pds_.erase(pd) ? Status::kOk : Status::kNotFound;
}

Expected<MrInfo> RnicDevice::create_mr(FnId fn, PdId pd, mem::Addr va,
                                       std::uint64_t len, std::uint32_t access,
                                       std::vector<mem::Segment> hpa_segments) {
  if (fn >= fns_.size() || len == 0) {
    return Expected<MrInfo>::error(Status::kInvalidArgument);
  }
  auto pit = pds_.find(pd);
  if (pit == pds_.end() || pit->second != fn) {
    return Expected<MrInfo>::error(Status::kNotFound);
  }
  std::uint64_t covered = 0;
  for (const auto& s : hpa_segments) covered += s.len;
  if (covered < len) {
    return Expected<MrInfo>::error(Status::kInvalidArgument);
  }
  const Key key = next_key_++;
  mrs_[key] = std::make_unique<MemoryRegion>(key, fn, pd, va, len, access,
                                             std::move(hpa_segments), &phys_);
  return Expected<MrInfo>::of(MrInfo{key, key});
}

Status RnicDevice::destroy_mr(Key lkey) {
  return mrs_.erase(lkey) ? Status::kOk : Status::kNotFound;
}

Expected<Cqn> RnicDevice::create_cq(FnId fn, int capacity) {
  if (fn >= fns_.size() || capacity <= 0) {
    return Expected<Cqn>::error(Status::kInvalidArgument);
  }
  const Cqn id = next_cq_++;
  cqs_[id] = std::make_unique<CompletionQueue>(loop_, id, capacity);
  return Expected<Cqn>::of(id);
}

Status RnicDevice::destroy_cq(Cqn cq) {
  return cqs_.erase(cq) ? Status::kOk : Status::kNotFound;
}

Expected<Qpn> RnicDevice::create_qp(FnId fn, const QpInitAttr& attr) {
  if (fn >= fns_.size()) return Expected<Qpn>::error(Status::kInvalidArgument);
  auto pit = pds_.find(attr.pd);
  if (pit == pds_.end() || pit->second != fn) {
    return Expected<Qpn>::error(Status::kNotFound);
  }
  if (cqs_.count(attr.send_cq) == 0 || cqs_.count(attr.recv_cq) == 0) {
    return Expected<Qpn>::error(Status::kNotFound);
  }
  const Qpn qpn = next_qpn_++;
  auto qp = std::make_unique<Qp>();
  qp->qpn = qpn;
  qp->fn = fn;
  qp->init = attr;
  qps_[qpn] = std::move(qp);
  assign_doorbell_slot(qpn);
  return Expected<Qpn>::of(qpn);
}

Status RnicDevice::destroy_qp(Qpn qpn) {
  Qp* qp = find_qp(qpn);
  if (qp == nullptr) return Status::kNotFound;
  for (net::FlowId fl : qp->active_flows) net_.cancel_flow(fl);
  for (auto& w : qp->window_waiters) w.set_value(true);
  release_doorbell_slot(qpn);
  qps_.erase(qpn);
  return Status::kOk;
}

Status RnicDevice::modify_qp(Qpn qpn, const QpAttr& attr, std::uint32_t mask) {
  Qp* qp = find_qp(qpn);
  if (qp == nullptr) return Status::kNotFound;
  if (mask & kAttrState) {
    if (!modify_allowed(qp->state, attr.state)) {
      return Status::kInvalidState;
    }
  }
  if (mask & kAttrDestGid) qp->attr.dest_gid = attr.dest_gid;
  if (mask & kAttrDestQpn) qp->attr.dest_qpn = attr.dest_qpn;
  if (mask & kAttrPathMtu) qp->attr.path_mtu = attr.path_mtu;
  if (mask & kAttrRqPsn) {
    qp->attr.rq_psn = attr.rq_psn;
    qp->next_rx_psn = attr.rq_psn;
  }
  if (mask & kAttrSqPsn) {
    qp->attr.sq_psn = attr.sq_psn;
    qp->next_tx_psn = attr.sq_psn;
    qp->next_ack_psn = attr.sq_psn;
  }
  if (mask & kAttrQkey) qp->attr.qkey = attr.qkey;
  if (mask & kAttrState) {
    const QpState prev = qp->state;
    transition_qp(*qp, attr.state);
    qp->attr.state = attr.state;
    if (attr.state == QpState::kError && prev != QpState::kError) {
      flush_qp(*qp);
    } else if (attr.state == QpState::kReset) {
      for (net::FlowId fl : qp->active_flows) net_.cancel_flow(fl);
      qp->active_flows.clear();
      qp->send_queue.clear();
      qp->recv_queue.clear();
      qp->pending.clear();
      qp->reorder.clear();
      qp->outstanding = 0;
      qp->next_tx_psn = qp->next_ack_psn = qp->next_rx_psn = 0;
      for (auto& w : qp->window_waiters) w.set_value(true);
      qp->window_waiters.clear();
    } else if (attr.state == QpState::kRts) {
      kick_engine(qpn);
    }
  }
  return Status::kOk;
}

bool RnicDevice::qp_exists(Qpn qpn) const { return find_qp(qpn) != nullptr; }

QpState RnicDevice::qp_state(Qpn qpn) const {
  const Qp* qp = find_qp(qpn);
  if (qp == nullptr) throw std::out_of_range("qp_state: no such QP");
  return qp->state;
}

std::uint32_t RnicDevice::qp_state_transitions(Qpn qpn) const {
  const Qp* qp = find_qp(qpn);
  if (qp == nullptr) {
    throw std::out_of_range("qp_state_transitions: no such QP");
  }
  return qp->state_transitions;
}

void RnicDevice::transition_qp(Qp& qp, QpState to) {
  qp.state = to;
  ++qp.state_transitions;
}

const QpAttr& RnicDevice::qp_hw_attr(Qpn qpn) const {
  const Qp* qp = find_qp(qpn);
  if (qp == nullptr) throw std::out_of_range("qp_hw_attr: no such QP");
  return qp->attr;
}

FnId RnicDevice::qp_fn(Qpn qpn) const {
  const Qp* qp = find_qp(qpn);
  if (qp == nullptr) throw std::out_of_range("qp_fn: no such QP");
  return qp->fn;
}

std::size_t RnicDevice::qp_outstanding(Qpn qpn) const {
  const Qp* qp = find_qp(qpn);
  if (qp == nullptr) throw std::out_of_range("qp_outstanding: no such QP");
  return qp->outstanding;
}

sim::Time RnicDevice::qp_error_processing_time(Qpn qpn) const {
  const Qp* qp = find_qp(qpn);
  if (qp == nullptr) return 0;
  const auto& c = config_.costs;
  const sim::Time base =
      fns_.at(qp->fn).is_vf ? c.qp_error_vf : c.qp_error_pf;
  const std::size_t wqes =
      qp->outstanding + qp->send_queue.size() + qp->recv_queue.size();
  return base + c.qp_error_drain_per_wqe * static_cast<sim::Time>(wqes);
}

// ---------------------------------------------------------------------------
// Live migration: extraction, restore, digests.
// ---------------------------------------------------------------------------

bool RnicDevice::qp_quiescent(Qpn qpn) const {
  const Qp* qp = find_qp(qpn);
  if (qp == nullptr) throw std::out_of_range("qp_quiescent: no such QP");
  // engine_running covers the window where a WQE has been popped off the
  // send queue but not yet launched (it is in neither queue nor pending
  // there — invisible to every other counter).
  return !qp->engine_running && qp->outstanding == 0 && qp->pending.empty() &&
         qp->active_flows.empty() && qp->reorder.empty();
}

Expected<RnicDevice::QpSnapshot> RnicDevice::extract_qp(Qpn qpn) {
  Qp* qp = find_qp(qpn);
  if (qp == nullptr) return Expected<QpSnapshot>::error(Status::kNotFound);
  if (!qp_quiescent(qpn)) {
    return Expected<QpSnapshot>::error(Status::kInvalidState);
  }
  QpSnapshot snap;
  snap.qpn = qp->qpn;
  snap.fn = qp->fn;
  snap.init = qp->init;
  snap.state = qp->state;
  snap.state_transitions = qp->state_transitions;
  snap.attr = qp->attr;
  snap.send_queue = std::move(qp->send_queue);
  snap.recv_queue = std::move(qp->recv_queue);
  snap.next_tx_psn = qp->next_tx_psn;
  snap.next_ack_psn = qp->next_ack_psn;
  snap.next_rx_psn = qp->next_rx_psn;
  snap.window_waiters = std::move(qp->window_waiters);
  snap.rx_waiters = std::move(qp->rx_waiters);
  release_doorbell_slot(qpn);
  qps_.erase(qpn);
  return Expected<QpSnapshot>::of(std::move(snap));
}

Expected<RnicDevice::CqSnapshot> RnicDevice::extract_cq(Cqn cqn) {
  auto it = cqs_.find(cqn);
  if (it == cqs_.end()) return Expected<CqSnapshot>::error(Status::kNotFound);
  CqSnapshot snap;
  snap.cqn = cqn;
  snap.capacity = it->second->capacity();
  snap.state = it->second->extract_state();
  cqs_.erase(it);
  return Expected<CqSnapshot>::of(std::move(snap));
}

Expected<RnicDevice::MrSnapshot> RnicDevice::extract_mr(Key lkey) {
  auto it = mrs_.find(lkey);
  if (it == mrs_.end()) return Expected<MrSnapshot>::error(Status::kNotFound);
  const MemoryRegion& mr = *it->second;
  MrSnapshot snap{mr.lkey(), mr.fn(), mr.pd(), mr.va(), mr.length(),
                  mr.access()};
  mrs_.erase(it);
  return Expected<MrSnapshot>::of(snap);
}

Status RnicDevice::restore_qp(QpSnapshot snap) {
  if (find_qp(snap.qpn) != nullptr) return Status::kInvalidArgument;
  if (snap.fn >= fns_.size()) return Status::kInvalidArgument;
  auto qp = std::make_unique<Qp>();
  qp->qpn = snap.qpn;
  qp->fn = snap.fn;
  qp->init = snap.init;
  qp->state = snap.state;
  qp->state_transitions = snap.state_transitions;
  qp->attr = snap.attr;
  qp->send_queue = std::move(snap.send_queue);
  qp->recv_queue = std::move(snap.recv_queue);
  qp->next_tx_psn = snap.next_tx_psn;
  qp->next_ack_psn = snap.next_ack_psn;
  qp->next_rx_psn = snap.next_rx_psn;
  qp->window_waiters = std::move(snap.window_waiters);
  qp->rx_waiters = std::move(snap.rx_waiters);
  const Qpn qpn = qp->qpn;
  qps_[qpn] = std::move(qp);
  assign_doorbell_slot(qpn);
  // A QP restored directly into RTS with queued WQEs resumes on its own;
  // the usual resume path restores into SQD and kicks via modify_qp(RTS).
  if (can_transmit(qps_.at(qpn)->state)) kick_engine(qpn);
  return Status::kOk;
}

Status RnicDevice::restore_cq(CqSnapshot snap) {
  if (cqs_.count(snap.cqn) != 0) return Status::kInvalidArgument;
  auto cq = std::make_unique<CompletionQueue>(loop_, snap.cqn, snap.capacity);
  cq->restore_state(std::move(snap.state));
  cqs_[snap.cqn] = std::move(cq);
  return Status::kOk;
}

Status RnicDevice::restore_mr(const MrSnapshot& snap,
                              std::vector<mem::Segment> hpa_segments) {
  if (mrs_.count(snap.lkey) != 0) return Status::kInvalidArgument;
  if (snap.fn >= fns_.size()) return Status::kInvalidArgument;
  std::uint64_t covered = 0;
  for (const auto& s : hpa_segments) covered += s.len;
  if (covered < snap.len) return Status::kInvalidArgument;
  mrs_[snap.lkey] = std::make_unique<MemoryRegion>(
      snap.lkey, snap.fn, snap.pd, snap.va, snap.len, snap.access,
      std::move(hpa_segments), &phys_);
  return Status::kOk;
}

Status RnicDevice::restore_pd(PdId pd, FnId fn) {
  if (fn >= fns_.size()) return Status::kInvalidArgument;
  if (pds_.count(pd) != 0) return Status::kInvalidArgument;
  pds_[pd] = fn;
  return Status::kOk;
}

std::uint64_t RnicDevice::qp_wqe_digest(Qpn qpn) const {
  const Qp* qp = find_qp(qpn);
  if (qp == nullptr) throw std::out_of_range("qp_wqe_digest: no such QP");
  std::uint64_t h = kFnvOffset;
  fnv_mix(&h, qp->qpn);
  fnv_mix(&h, qp->send_queue.size());
  for (const SendWr& wr : qp->send_queue) {
    fnv_mix(&h, wr.wr_id);
    fnv_mix(&h, static_cast<std::uint64_t>(wr.opcode));
    fnv_mix(&h, wr.sge.length);
    fnv_mix(&h, wr.signaled ? 1 : 0);
  }
  fnv_mix(&h, qp->recv_queue.size());
  for (const RecvWr& wr : qp->recv_queue) fnv_mix(&h, wr.wr_id);
  fnv_mix(&h, qp->next_tx_psn);
  fnv_mix(&h, qp->next_ack_psn);
  fnv_mix(&h, qp->next_rx_psn);
  fnv_mix(&h, qp->pending.size());
  return h;
}

std::uint64_t RnicDevice::cq_digest(Cqn cqn) const {
  auto it = cqs_.find(cqn);
  if (it == cqs_.end()) throw std::out_of_range("cq_digest: no such CQ");
  std::uint64_t h = kFnvOffset;
  fnv_mix(&h, cqn);
  fnv_mix(&h, it->second->depth());
  // Undelivered CQEs are part of the WQE ledger: dropping one across the
  // move loses a completion the application is still owed.
  it->second->for_each_cqe([&h](const Completion& c) {
    fnv_mix(&h, c.wr_id);
    fnv_mix(&h, static_cast<std::uint64_t>(c.status));
    fnv_mix(&h, static_cast<std::uint64_t>(c.opcode));
    fnv_mix(&h, c.byte_len);
    fnv_mix(&h, c.qpn);
  });
  fnv_mix(&h, it->second->overflowed() ? 1 : 0);
  return h;
}

std::size_t RnicDevice::qp_send_queue_depth(Qpn qpn) const {
  const Qp* qp = find_qp(qpn);
  if (qp == nullptr) throw std::out_of_range("qp_send_queue_depth: no QP");
  return qp->send_queue.size();
}

std::size_t RnicDevice::qp_recv_queue_depth(Qpn qpn) const {
  const Qp* qp = find_qp(qpn);
  if (qp == nullptr) throw std::out_of_range("qp_recv_queue_depth: no QP");
  return qp->recv_queue.size();
}

std::size_t RnicDevice::cq_depth(Cqn cqn) const {
  auto it = cqs_.find(cqn);
  if (it == cqs_.end()) throw std::out_of_range("cq_depth: no such CQ");
  return it->second->depth();
}

// ---------------------------------------------------------------------------
// Data path: posting.
// ---------------------------------------------------------------------------

Status RnicDevice::post_send(Qpn qpn, const SendWr& wr, bool ring_doorbell) {
  Qp* qp = find_qp(qpn);
  if (qp == nullptr) return Status::kNotFound;
  if (!can_post_send(qp->state)) return Status::kInvalidState;
  if (qp->send_queue.size() >= qp->init.caps.max_send_wr) {
    return Status::kQueueFull;
  }
  if (qp->state == QpState::kError || qp->state == QpState::kSqe) {
    // Table 2: posting is allowed, the WQE immediately flushes with error.
    post_send_cqe(*qp, wr, WcStatus::kWrFlushErr, 0);
    return Status::kOk;
  }
  qp->send_queue.push_back(wr);
  if (ring_doorbell) kick_engine(qpn);
  return Status::kOk;
}

Status RnicDevice::post_recv(Qpn qpn, const RecvWr& wr) {
  Qp* qp = find_qp(qpn);
  if (qp == nullptr) return Status::kNotFound;
  if (!can_post_recv(qp->state)) return Status::kInvalidState;
  if (qp->recv_queue.size() >= qp->init.caps.max_recv_wr) {
    return Status::kQueueFull;
  }
  if (qp->state == QpState::kError) {
    Completion c;
    c.wr_id = wr.wr_id;
    c.status = WcStatus::kWrFlushErr;
    c.opcode = WcOpcode::kRecv;
    c.qpn = qp->qpn;
    post_completion(qp->init.recv_cq, c);
    return Status::kOk;
  }
  qp->recv_queue.push_back(wr);
  return Status::kOk;
}

int RnicDevice::poll_cq(Cqn cq, int max_entries, Completion* out) {
  CompletionQueue* c = find_cq(cq);
  if (c == nullptr) return -1;
  return c->poll(max_entries, out);
}

sim::Future<bool> RnicDevice::cq_nonempty(Cqn cq) {
  CompletionQueue* c = find_cq(cq);
  if (c == nullptr) throw std::out_of_range("cq_nonempty: no such CQ");
  return c->nonempty();
}

bool RnicDevice::cq_overflowed(Cqn cq) const {
  auto it = cqs_.find(cq);
  return it != cqs_.end() && it->second->overflowed();
}

void RnicDevice::mmio_write(mem::Addr offset, std::uint64_t /*value*/) {
  // Doorbell register file: offset = slot * 8; the slot table maps back to
  // the owning QP (slot 0 of a freed register maps to QPN 0 -> no-op).
  const auto slot = static_cast<std::size_t>(offset / 8);
  if (slot < doorbell_owner_.size()) kick_engine(doorbell_owner_[slot]);
}

std::uint64_t RnicDevice::doorbell_offset(Qpn qpn) const {
  auto it = doorbell_slots_.find(qpn);
  if (it == doorbell_slots_.end()) {
    throw std::out_of_range("doorbell_offset: no such QP");
  }
  return static_cast<std::uint64_t>(it->second) * 8;
}

std::uint32_t RnicDevice::assign_doorbell_slot(Qpn qpn) {
  std::uint32_t slot;
  if (!doorbell_free_.empty()) {
    slot = doorbell_free_.back();
    doorbell_free_.pop_back();
    doorbell_owner_[slot] = qpn;
  } else {
    slot = static_cast<std::uint32_t>(doorbell_owner_.size());
    if (static_cast<mem::Addr>(slot) * 8 >= kDoorbellBarBytes) {
      throw std::length_error("doorbell register file exhausted");
    }
    doorbell_owner_.push_back(qpn);
  }
  doorbell_slots_[qpn] = slot;
  return slot;
}

void RnicDevice::release_doorbell_slot(Qpn qpn) {
  auto it = doorbell_slots_.find(qpn);
  if (it == doorbell_slots_.end()) return;
  doorbell_owner_[it->second] = 0;
  doorbell_free_.push_back(it->second);
  doorbell_slots_.erase(it);
}

std::uint64_t RnicDevice::mmio_read(mem::Addr /*offset*/) { return 0; }

// ---------------------------------------------------------------------------
// Send engine.
// ---------------------------------------------------------------------------

void RnicDevice::kick_engine(Qpn qpn) {
  Qp* qp = find_qp(qpn);
  if (qp == nullptr || qp->engine_running) return;
  if (qp->send_queue.empty()) return;
  qp->engine_running = true;
  loop_.spawn(send_engine(qpn));
}

sim::Task<void> RnicDevice::send_engine(Qpn qpn) {
  while (true) {
    Qp* qp = find_qp(qpn);
    if (qp == nullptr) co_return;  // destroyed while running
    if (!can_transmit(qp->state) || qp->send_queue.empty()) break;
    if (qp->outstanding >= qp->init.caps.max_send_wr) {
      sim::Promise<bool> p(loop_);
      auto f = p.get_future();
      qp->window_waiters.push_back(std::move(p));
      co_await f;
      continue;
    }
    SendWr wr = qp->send_queue.front();
    qp->send_queue.pop_front();
    co_await engine_.submit(config_.costs.engine_gap);
    qp = find_qp(qpn);
    if (qp == nullptr) co_return;
    if (qp->state == QpState::kError || qp->state == QpState::kSqe) {
      post_send_cqe(*qp, wr, WcStatus::kWrFlushErr, 0);
      continue;
    }
    launch_wqe(*qp, std::move(wr));
  }
  if (Qp* qp = find_qp(qpn)) qp->engine_running = false;
}

MemoryRegion* RnicDevice::validate_local_sge(const Qp& qp, const Sge& sge,
                                             WcStatus* status) {
  MemoryRegion* mr = find_mr(sge.lkey);
  if (mr == nullptr || mr->fn() != qp.fn || mr->pd() != qp.init.pd ||
      !mr->contains(sge.addr, sge.length)) {
    *status = WcStatus::kLocProtErr;
    return nullptr;
  }
  *status = WcStatus::kSuccess;
  return mr;
}

void RnicDevice::launch_wqe(Qp& qp, SendWr wr) {
  const FunctionInfo& f = fns_.at(qp.fn);
  const auto& costs = config_.costs;

  // Local sge validation + DMA read of the payload (send/write).
  std::vector<std::uint8_t> payload;
  if (wr.opcode != WrOpcode::kRdmaRead && wr.sge.length > 0) {
    WcStatus st;
    MemoryRegion* mr = validate_local_sge(qp, wr.sge, &st);
    if (mr == nullptr) {
      post_send_cqe(qp, wr, st, 0);
      if (hw_error_transition_allowed(qp.state, QpState::kSqe)) {
        transition_qp(qp, QpState::kSqe);
      }
      return;
    }
    payload.resize(wr.sge.length);
    mr->dma_read(wr.sge.addr, payload);
  }
  if (wr.opcode == WrOpcode::kRdmaRead && wr.sge.length > 0) {
    // Validate the landing buffer up front; data arrives later.
    WcStatus st;
    if (validate_local_sge(qp, wr.sge, &st) == nullptr) {
      post_send_cqe(qp, wr, st, 0);
      if (hw_error_transition_allowed(qp.state, QpState::kSqe)) {
        transition_qp(qp, QpState::kSqe);
      }
      return;
    }
  }

  Message msg;
  switch (wr.opcode) {
    case WrOpcode::kSend:
      msg.op = qp.init.type == QpType::kUd ? MsgOp::kUdSend : MsgOp::kSend;
      break;
    case WrOpcode::kRdmaWrite:
      msg.op = MsgOp::kWrite;
      break;
    case WrOpcode::kRdmaWriteImm:
      msg.op = MsgOp::kWriteImm;
      msg.imm = wr.imm;
      break;
    case WrOpcode::kRdmaRead:
      msg.op = MsgOp::kReadReq;
      msg.read_len = wr.sge.length;
      break;
  }
  msg.payload = std::move(payload);
  msg.remote_addr = wr.remote_addr;
  if (wr.opcode == WrOpcode::kRdmaWriteImm) msg.imm = wr.imm;
  msg.rkey = wr.rkey;
  msg.qkey = wr.ud.qkey;
  msg.src_qpn = qp.qpn;
  msg.src_underlay = fns_[kPf].ip;
  msg.psn = qp.next_tx_psn++;

  const UdDest* ud = qp.init.type == QpType::kUd ? &wr.ud : nullptr;
  if (!build_frame(qp, f, msg.op,
                   static_cast<std::uint32_t>(msg.payload.size()), ud,
                   &msg.frame)) {
    // No route at the NIC level (e.g. missing tunnel entry): the packet
    // never leaves; retries exhaust.
    post_send_cqe(qp, wr, WcStatus::kTransportRetryExc, 0);
    if (hw_error_transition_allowed(qp.state, QpState::kSqe)) {
      transition_qp(qp, QpState::kSqe);
    }
    return;
  }

  const bool is_ud = qp.init.type == QpType::kUd;
  if (!is_ud) {
    PendingSend pend{wr, false, WcStatus::kSuccess};
    pend.msg = msg;  // retransmission copy
    pend.retries_left = kRcRetryCount;
    qp.pending.emplace(msg.psn, std::move(pend));
    ++qp.outstanding;
  }

  // Transmit-side pipeline latency before bytes hit the wire.
  sim::Time tx_latency = costs.tx_proc;
  if (f.is_vf) tx_latency += costs.vf_extra_tx;
  if (config_.iommu && !msg.payload.empty()) tx_latency += costs.iommu_per_dma;

  const Qpn qpn = qp.qpn;
  ++counters_.tx_msgs;
  loop_.schedule_after(tx_latency, [this, qpn, m = std::move(msg),
                                    wr, is_ud]() mutable {
    Qp* q = find_qp(qpn);
    if (q == nullptr) return;
    if (q->state == QpState::kError) return;  // flushed while in pipeline
    transmit(*q, std::move(m), !is_ud);
    if (is_ud) {
      // Unreliable: completion raised as soon as the message is on the
      // wire; no ack will come.
      post_send_cqe(*q, wr, WcStatus::kSuccess, wr.sge.length);
    }
  });
}

bool RnicDevice::build_frame(const Qp& qp, const FunctionInfo& f, MsgOp op,
                             std::uint32_t payload_len, const UdDest* ud,
                             net::RoceFrame* out) {
  net::RoceFrame frame;
  frame.bth.dest_qpn = ud != nullptr ? ud->qpn : qp.attr.dest_qpn;
  frame.bth.psn = qp.next_tx_psn - 1;
  switch (op) {
    case MsgOp::kSend: frame.bth.opcode = net::BthOpcode::kRcSendOnly; break;
    case MsgOp::kWrite:
    case MsgOp::kWriteImm:
      frame.bth.opcode = net::BthOpcode::kRcWriteOnly;
      break;
    case MsgOp::kReadReq:
      frame.bth.opcode = net::BthOpcode::kRcReadRequest;
      break;
    case MsgOp::kReadResp:
      frame.bth.opcode = net::BthOpcode::kRcReadResponse;
      break;
    case MsgOp::kUdSend: frame.bth.opcode = net::BthOpcode::kUdSendOnly; break;
  }
  frame.payload_bytes = payload_len;

  const net::Gid dest_gid = ud != nullptr ? ud->gid : qp.attr.dest_gid;
  const auto dest_ip = dest_gid.to_ipv4();
  if (!dest_ip) return false;

  if (f.vxlan_offload) {
    // SR-IOV offload: inner frame carries tenant addresses; the NIC looks
    // up the tunnel table to build the outer (underlay) header.
    sim::Time extra = 0;
    const TunnelEntry* t = tunnel_lookup(dest_gid, &extra);
    // The cache-lookup cost is charged as engine occupancy: it delays
    // every message behind this one when the table is cold.
    if (extra > 0) engine_.submit(extra);
    if (t == nullptr) return false;
    const auto outer_dst = t->phys_gid.to_ipv4();
    if (!outer_dst) return false;
    frame.ip.src = f.ip;
    frame.ip.dst = *dest_ip;
    frame.eth.src = f.mac;
    frame.vxlan = true;
    frame.vxlan_hdr.vni = t->vni;
    frame.outer_ip.src = fns_[kPf].ip;
    frame.outer_ip.dst = *outer_dst;
    frame.outer_eth.src = fns_[kPf].mac;
  } else {
    // Native RoCEv2: whatever the QPC holds goes on the wire. After
    // RConnrename this is a physical address; without it, a virtual one —
    // unroutable on the underlay.
    frame.ip.src = fns_[kPf].ip;
    frame.ip.dst = *dest_ip;
    frame.eth.src = fns_[kPf].mac;
  }
  *out = frame;
  return true;
}

void RnicDevice::transmit(Qp& qp, Message msg, bool expect_ack) {
  const FunctionInfo& f = fns_.at(qp.fn);
  const net::Ipv4Addr underlay_dst =
      msg.frame.vxlan ? msg.frame.outer_ip.dst : msg.frame.ip.dst;

  RnicDevice* remote =
      router_ != nullptr ? router_->device_by_ip(underlay_dst) : nullptr;
  const Qpn qpn = qp.qpn;
  const std::uint32_t psn = msg.psn;

  if (remote == nullptr) {
    ++counters_.dropped_no_route;
    if (expect_ack) {
      // Retries exhaust after the transport timeout.
      loop_.schedule_after(kRetryTimeout, [this, qpn, psn] {
        on_ack(qpn, psn, WcStatus::kTransportRetryExc);
      });
    }
    return;
  }

  // Wire size: payload + per-packet headers after MTU segmentation.
  const std::uint32_t mtu = std::max<std::uint32_t>(qp.attr.path_mtu, 256);
  const std::uint64_t payload = msg.frame.payload_bytes;
  const std::uint64_t packets = payload == 0 ? 1 : (payload + mtu - 1) / mtu;
  std::uint64_t per_packet = net::kRoceV2OverheadBytes;
  if (msg.frame.vxlan) per_packet += net::kVxlanOverheadBytes;
  const std::uint64_t wire_bytes = payload + packets * per_packet;

  std::vector<net::LinkId> path;
  if (f.is_vf) path.push_back(f.limiter_link);
  path.push_back(tx_link_);
  // Leaf/spine hops between the two NICs (empty without a configured
  // topology). remote != nullptr implies router_ != nullptr.
  for (net::LinkId l : router_->fabric_path(fns_.at(kPf).ip, underlay_dst,
                                            qpn, msg.frame.bth.dest_qpn)) {
    path.push_back(l);
  }
  path.push_back(remote->rx_link());

  auto flow_slot = std::make_shared<net::FlowId>(0);
  const net::FlowId flow = net_.start_flow(
      std::move(path), wire_bytes, net::kUncapped,
      [this, remote, qpn, psn, expect_ack, flow_slot,
       m = std::move(msg)]() mutable {
        if (Qp* q = find_qp(qpn)) {
          auto& fl = q->active_flows;
          fl.erase(std::remove(fl.begin(), fl.end(), *flow_slot), fl.end());
        }
        remote->deliver(std::move(m));
        if (expect_ack) {
          // If no ack (or nak) arrives, retransmit until the budget is
          // spent; only then do the retries exhaust.
          loop_.schedule_after(kRetryTimeout, [this, qpn, psn] {
            maybe_retry(qpn, psn);
          });
        }
      });
  *flow_slot = flow;
  qp.active_flows.push_back(flow);
}

// ---------------------------------------------------------------------------
// Receive path.
// ---------------------------------------------------------------------------

sim::Future<bool> RnicDevice::next_rx_event(Qpn qpn) {
  Qp* qp = find_qp(qpn);
  if (qp == nullptr) throw std::out_of_range("next_rx_event: no such QP");
  sim::Promise<bool> p(loop_);
  auto f = p.get_future();
  qp->rx_waiters.push_back(std::move(p));
  return f;
}

void RnicDevice::deliver(Message msg) {
  ++counters_.rx_msgs;
  // Engine occupancy models the device's finite message rate; the
  // remaining pipeline latency depends on the operation and function.
  struct RxTask {
    static sim::Task<void> run(RnicDevice* dev, Message msg) {
      co_await dev->engine_.submit(dev->config_.costs.engine_gap);
      const auto& c = dev->config_.costs;
      sim::Time latency =
          msg.op == MsgOp::kWrite || msg.op == MsgOp::kReadResp
              ? c.rx_proc_write
              : c.rx_proc_send;
      const Qp* qp = dev->find_qp(msg.frame.bth.dest_qpn);
      if (qp != nullptr && dev->fns_.at(qp->fn).is_vf) {
        latency += c.vf_extra_rx;
      }
      if (dev->config_.iommu && !msg.payload.empty()) {
        latency += c.iommu_per_dma;
      }
      co_await sim::delay(dev->loop_, latency);
      dev->process_incoming(std::move(msg));
    }
  };
  loop_.spawn(RxTask::run(this, std::move(msg)));
}

void RnicDevice::process_incoming(Message msg) {
  Qp* qp = find_qp(msg.frame.bth.dest_qpn);
  if (qp == nullptr) {
    ++counters_.dropped_no_qp;
    return;  // silent drop; the sender's retries exhaust
  }
  const FunctionInfo& f = fns_.at(qp->fn);

  if (msg.frame.vxlan) {
    // Hardware decap: the inner destination and VNI must match the VF the
    // QP lives on — tenant isolation enforced by the NIC.
    if (!f.vxlan_offload || f.vni != msg.frame.vxlan_hdr.vni ||
        f.ip != msg.frame.ip.dst) {
      ++counters_.dropped_no_qp;
      return;
    }
  }

  if (!can_accept_packets(qp->state)) {
    ++counters_.dropped_bad_state;  // Table 2: ERROR QPs drop packets
    return;
  }

  if (msg.op == MsgOp::kUdSend) {
    if (qp->init.type != QpType::kUd || msg.qkey != qp->attr.qkey) {
      ++counters_.dropped_no_qp;
      return;  // bad Q-Key: silently dropped (unreliable transport)
    }
    handle_in_order(*qp, msg);
    return;
  }

  if (msg.op == MsgOp::kReadResp) {
    // Response to our own read request: complete it (no rx ordering).
    auto it = qp->pending.find(msg.psn);
    if (it == qp->pending.end() || it->second.done) return;
    WcStatus st;
    MemoryRegion* mr = validate_local_sge(*qp, it->second.wr.sge, &st);
    if (mr != nullptr && msg.payload.size() <= it->second.wr.sge.length) {
      mr->dma_write(it->second.wr.sge.addr, msg.payload);
      it->second.status = WcStatus::kSuccess;
    } else {
      it->second.status = WcStatus::kLocProtErr;
    }
    it->second.done = true;
    drain_acks(*qp);
    return;
  }

  // RC ordering: buffer early arrivals, drop duplicates.
  if (msg.psn != qp->next_rx_psn) {
    const auto distance = static_cast<std::int64_t>(msg.psn) -
                          static_cast<std::int64_t>(qp->next_rx_psn);
    if (distance > 0) {
      qp->reorder.emplace(msg.psn, std::move(msg));
    } else if (msg.op == MsgOp::kSend || msg.op == MsgOp::kWrite ||
               msg.op == MsgOp::kWriteImm) {
      // A duplicate of an already-executed request: a retransmission
      // whose original ack raced it. Re-ack so the requester completes
      // (reads re-request the data instead, so they stay dropped).
      send_ack(msg, WcStatus::kSuccess);
    }
    return;
  }
  handle_in_order(*qp, msg);
  ++qp->next_rx_psn;
  // Drain any buffered successors.
  auto it = qp->reorder.find(qp->next_rx_psn);
  while (it != qp->reorder.end()) {
    Message next = std::move(it->second);
    qp->reorder.erase(it);
    Qp* q2 = find_qp(next.frame.bth.dest_qpn);
    if (q2 == nullptr || !can_accept_packets(q2->state)) break;
    handle_in_order(*q2, next);
    ++q2->next_rx_psn;
    it = q2->reorder.find(q2->next_rx_psn);
  }
}

void RnicDevice::handle_in_order(Qp& qp, Message& msg) {
  if (!qp.rx_waiters.empty()) {
    for (auto& w : qp.rx_waiters) w.set_value(true);
    qp.rx_waiters.clear();
  }
  switch (msg.op) {
    case MsgOp::kUdSend:
    case MsgOp::kSend: {
      if (qp.recv_queue.empty()) {
        ++counters_.rnr_drops;
        if (msg.op == MsgOp::kSend) send_ack(msg, WcStatus::kRnrRetryExc);
        return;  // UD: silently dropped
      }
      RecvWr rwr = qp.recv_queue.front();
      qp.recv_queue.pop_front();
      Completion c;
      c.wr_id = rwr.wr_id;
      c.opcode = WcOpcode::kRecv;
      c.qpn = qp.qpn;
      c.byte_len = static_cast<std::uint32_t>(msg.payload.size());
      WcStatus st = WcStatus::kSuccess;
      MemoryRegion* mr =
          msg.payload.empty() ? nullptr : validate_local_sge(qp, rwr.sge, &st);
      if (!msg.payload.empty()) {
        if (mr == nullptr || msg.payload.size() > rwr.sge.length ||
            (mr->access() & kLocalWrite) == 0) {
          c.status = WcStatus::kLocProtErr;
          post_completion(qp.init.recv_cq, c);
          if (msg.op == MsgOp::kSend) {
            send_ack(msg, WcStatus::kRemAccessErr);
            transition_qp(qp, QpState::kError);
            flush_qp(qp);
          }
          return;
        }
        mr->dma_write(rwr.sge.addr, msg.payload);
      }
      c.status = WcStatus::kSuccess;
      post_completion(qp.init.recv_cq, c);
      if (msg.op == MsgOp::kSend) send_ack(msg, WcStatus::kSuccess);
      return;
    }
    case MsgOp::kWriteImm: {
      // Write the payload through the rkey like a plain write, then
      // consume a recv WQE to deliver the immediate (its sge is unused).
      MemoryRegion* mr = find_mr(msg.rkey);
      if (mr == nullptr || mr->fn() != qp.fn || mr->pd() != qp.init.pd ||
          (mr->access() & kRemoteWrite) == 0 ||
          !mr->contains(msg.remote_addr, msg.payload.size())) {
        ++counters_.remote_access_naks;
        send_ack(msg, WcStatus::kRemAccessErr);
        transition_qp(qp, QpState::kError);
        flush_qp(qp);
        return;
      }
      if (qp.recv_queue.empty()) {
        ++counters_.rnr_drops;
        send_ack(msg, WcStatus::kRnrRetryExc);
        return;
      }
      mr->dma_write(msg.remote_addr, msg.payload);
      RecvWr rwr = qp.recv_queue.front();
      qp.recv_queue.pop_front();
      Completion c;
      c.wr_id = rwr.wr_id;
      c.opcode = WcOpcode::kRecvRdmaWithImm;
      c.status = WcStatus::kSuccess;
      c.byte_len = static_cast<std::uint32_t>(msg.payload.size());
      c.imm = msg.imm;
      c.qpn = qp.qpn;
      post_completion(qp.init.recv_cq, c);
      send_ack(msg, WcStatus::kSuccess);
      return;
    }
    case MsgOp::kWrite: {
      MemoryRegion* mr = find_mr(msg.rkey);
      if (mr == nullptr || mr->fn() != qp.fn || mr->pd() != qp.init.pd ||
          (mr->access() & kRemoteWrite) == 0 ||
          !mr->contains(msg.remote_addr, msg.payload.size())) {
        ++counters_.remote_access_naks;
        send_ack(msg, WcStatus::kRemAccessErr);
        transition_qp(qp, QpState::kError);  // responder fails the connection
        flush_qp(qp);
        return;
      }
      mr->dma_write(msg.remote_addr, msg.payload);
      send_ack(msg, WcStatus::kSuccess);
      return;
    }
    case MsgOp::kReadReq: {
      MemoryRegion* mr = find_mr(msg.rkey);
      if (mr == nullptr || mr->fn() != qp.fn || mr->pd() != qp.init.pd ||
          (mr->access() & kRemoteRead) == 0 ||
          !mr->contains(msg.remote_addr, msg.read_len)) {
        ++counters_.remote_access_naks;
        send_ack(msg, WcStatus::kRemAccessErr);
        transition_qp(qp, QpState::kError);
        flush_qp(qp);
        return;
      }
      Message resp;
      resp.op = MsgOp::kReadResp;
      resp.payload.resize(msg.read_len);
      mr->dma_read(msg.remote_addr, resp.payload);
      resp.psn = msg.psn;  // echoes the request psn
      resp.src_qpn = qp.qpn;
      resp.src_underlay = fns_[kPf].ip;
      const FunctionInfo& f = fns_.at(qp.fn);
      if (!build_frame(qp, f, MsgOp::kReadResp,
                       static_cast<std::uint32_t>(resp.payload.size()),
                       nullptr, &resp.frame)) {
        return;
      }
      resp.frame.bth.psn = msg.psn;
      transmit(qp, std::move(resp), /*expect_ack=*/false);
      return;
    }
    case MsgOp::kReadResp:
      return;  // handled in process_incoming
  }
}

void RnicDevice::send_ack(const Message& msg, WcStatus status) {
  if (router_ == nullptr) return;
  RnicDevice* sender = router_->device_by_ip(msg.src_underlay);
  if (sender == nullptr) return;
  const Qpn qpn = msg.src_qpn;
  const std::uint32_t psn = msg.psn;
  // Acks are tiny and coalesced; charge propagation only.
  loop_.schedule_after(config_.link_prop_oneway, [sender, qpn, psn, status] {
    sender->on_ack(qpn, psn, status);
  });
}

void RnicDevice::maybe_retry(Qpn qpn, std::uint32_t psn) {
  Qp* qp = find_qp(qpn);
  if (qp == nullptr) return;
  auto it = qp->pending.find(psn);
  if (it == qp->pending.end() || it->second.done) return;
  if (qp->state == QpState::kError) return;  // flush owns the pending set
  if (it->second.retries_left <= 0) {
    on_ack(qpn, psn, WcStatus::kTransportRetryExc);
    return;
  }
  --it->second.retries_left;
  ++counters_.retransmits;
  Message m = it->second.msg;
  // Rebuild the wire headers from the live QPC: the peer may have been
  // renamed since the original attempt (transparent live migration
  // rewrites dest_gid while the dropped packet's timeout is pending).
  net::RoceFrame frame;
  if (!build_frame(*qp, fns_.at(qp->fn), m.op,
                   static_cast<std::uint32_t>(m.frame.payload_bytes),
                   nullptr, &frame)) {
    // Transient no-route: burn the attempt, keep the timer running.
    loop_.schedule_after(kRetryTimeout,
                         [this, qpn, psn] { maybe_retry(qpn, psn); });
    return;
  }
  frame.bth.psn = m.psn;
  m.frame = frame;
  transmit(*qp, std::move(m), /*expect_ack=*/true);
}

void RnicDevice::on_ack(Qpn src_qpn, std::uint32_t psn, WcStatus status) {
  Qp* qp = find_qp(src_qpn);
  if (qp == nullptr) return;
  auto it = qp->pending.find(psn);
  if (it == qp->pending.end() || it->second.done) return;
  it->second.done = true;
  it->second.status = status;
  drain_acks(*qp);
}

void RnicDevice::drain_acks(Qp& qp) {
  while (!qp.pending.empty()) {
    auto it = qp.pending.find(qp.next_ack_psn);
    if (it == qp.pending.end() || !it->second.done) break;
    const WcStatus status = it->second.status;
    const SendWr wr = it->second.wr;
    qp.pending.erase(it);
    ++qp.next_ack_psn;
    if (qp.outstanding > 0) --qp.outstanding;
    post_send_cqe(qp, wr, status, wr.sge.length);
    release_window_slot(qp);
    if (status != WcStatus::kSuccess) {
      // A completion error stops the send queue (Fig. 5: RTS -> SQE);
      // everything behind the failed WQE flushes.
      if (hw_error_transition_allowed(qp.state, QpState::kSqe)) {
        transition_qp(qp, QpState::kSqe);
      }
      for (auto& [p, pend] : qp.pending) {
        post_send_cqe(qp, pend.wr, WcStatus::kWrFlushErr, 0);
      }
      qp.pending.clear();
      qp.outstanding = 0;
      for (auto& wq : qp.send_queue) {
        post_send_cqe(qp, wq, WcStatus::kWrFlushErr, 0);
      }
      qp.send_queue.clear();
      release_window_slot(qp);
      break;
    }
  }
}

void RnicDevice::release_window_slot(Qp& qp) {
  if (!qp.window_waiters.empty()) {
    auto p = std::move(qp.window_waiters.front());
    qp.window_waiters.erase(qp.window_waiters.begin());
    p.set_value(true);
  }
}

void RnicDevice::flush_qp(Qp& qp) {
  for (net::FlowId fl : qp.active_flows) net_.cancel_flow(fl);
  qp.active_flows.clear();
  // In-flight sends flush in psn order.
  for (auto& [psn, pend] : qp.pending) {
    post_send_cqe(qp, pend.wr, WcStatus::kWrFlushErr, 0);
  }
  qp.pending.clear();
  qp.outstanding = 0;
  for (auto& wr : qp.send_queue) {
    post_send_cqe(qp, wr, WcStatus::kWrFlushErr, 0);
  }
  qp.send_queue.clear();
  for (auto& rwr : qp.recv_queue) {
    Completion c;
    c.wr_id = rwr.wr_id;
    c.status = WcStatus::kWrFlushErr;
    c.opcode = WcOpcode::kRecv;
    c.qpn = qp.qpn;
    post_completion(qp.init.recv_cq, c);
  }
  qp.recv_queue.clear();
  qp.reorder.clear();
  for (auto& w : qp.window_waiters) w.set_value(true);
  qp.window_waiters.clear();
  for (const auto& hook : qp_error_hooks_) hook.second(qp.qpn);
}

void RnicDevice::post_send_cqe(Qp& qp, const SendWr& wr, WcStatus status,
                               std::uint32_t byte_len) {
  if (status == WcStatus::kSuccess && !wr.signaled) return;
  Completion c;
  c.wr_id = wr.wr_id;
  c.status = status;
  c.byte_len = byte_len;
  c.qpn = qp.qpn;
  switch (wr.opcode) {
    case WrOpcode::kSend: c.opcode = WcOpcode::kSend; break;
    case WrOpcode::kRdmaWrite:
    case WrOpcode::kRdmaWriteImm:
      c.opcode = WcOpcode::kRdmaWrite;
      break;
    case WrOpcode::kRdmaRead: c.opcode = WcOpcode::kRdmaRead; break;
  }
  post_completion(qp.init.send_cq, c);
}

void RnicDevice::post_completion(Cqn cq, const Completion& c) {
  CompletionQueue* q = find_cq(cq);
  if (q == nullptr) return;
  q->push(c);
}

RnicDevice::Qp* RnicDevice::find_qp(Qpn qpn) {
  auto it = qps_.find(qpn);
  return it == qps_.end() ? nullptr : it->second.get();
}

const RnicDevice::Qp* RnicDevice::find_qp(Qpn qpn) const {
  auto it = qps_.find(qpn);
  return it == qps_.end() ? nullptr : it->second.get();
}

CompletionQueue* RnicDevice::find_cq(Cqn cq) {
  auto it = cqs_.find(cq);
  return it == cqs_.end() ? nullptr : it->second.get();
}

MemoryRegion* RnicDevice::find_mr(Key lkey) {
  auto it = mrs_.find(lkey);
  return it == mrs_.end() ? nullptr : it->second.get();
}

}  // namespace rnic
