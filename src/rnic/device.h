// Simulated RoCEv2 RNIC.
//
// One device = one physical port (PF) plus SR-IOV virtual functions. The
// device executes the *data path* entirely: doorbells arrive by MMIO, WQEs
// are drained by a serial engine, payload bytes move by DMA through each
// MR's MTT, messages travel the fabric as fluid flows, and completions are
// raised in PSN order with RC ack/retry semantics. Control operations
// (create/modify/destroy) are pure bookkeeping here — the *driver* that
// calls them charges their latency, which is exactly the split that lets
// MasQ virtualize the control path without touching the data path.
//
// Network-virtualization hooks:
//  * per-VF hardware rate limiters exposed as virtual links (MasQ QoS),
//  * an on-NIC VXLAN tunnel table with a finite cache (SR-IOV baseline's
//    scalability cliff),
//  * frames carry whatever addresses the QPC holds — if a tenant's virtual
//    GID leaks into the QPC the frame is unroutable on the underlay, which
//    is the failure RConnrename exists to prevent.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mem/address_space.h"
#include "mem/physical_memory.h"
#include "net/addr.h"
#include "net/fluid.h"
#include "net/headers.h"
#include "rnic/completion_queue.h"
#include "rnic/costs.h"
#include "rnic/memory_region.h"
#include "rnic/qp_state.h"
#include "rnic/types.h"
#include "sim/event_loop.h"
#include "sim/flat_map.h"
#include "sim/service_queue.h"
#include "sim/task.h"

namespace rnic {

class RnicDevice;

// Routes underlay IPs to devices (implemented by fabric::Testbed).
class FabricRouter {
 public:
  virtual ~FabricRouter() = default;
  virtual RnicDevice* device_by_ip(net::Ipv4Addr underlay_ip) = 0;
  // The fabric links (leaf/spine hops, DESIGN.md §17) a frame crosses
  // between two underlay endpoints, in wire order; inserted between the
  // sender's tx link and the receiver's rx link. The QPNs feed the ECMP
  // 5-tuple. Default: none — the legacy direct-link wire, so routers
  // without a configured topology keep a bit-identical event stream.
  virtual std::vector<net::LinkId> fabric_path(net::Ipv4Addr src_ip,
                                               net::Ipv4Addr dst_ip,
                                               Qpn src_qpn, Qpn dst_qpn) {
    (void)src_ip;
    (void)dst_ip;
    (void)src_qpn;
    (void)dst_qpn;
    return {};
  }
};

enum class MsgOp : std::uint8_t {
  kSend,
  kWrite,
  kWriteImm,
  kReadReq,
  kReadResp,
  kUdSend,
};

// One WQE's worth of data on the wire. MTU segmentation is charged as
// per-packet header bytes in the flow size, not simulated packet by packet.
struct Message {
  net::RoceFrame frame;
  MsgOp op = MsgOp::kSend;
  std::vector<std::uint8_t> payload;
  mem::Addr remote_addr = 0;      // write / read
  Key rkey = 0;                   // write / read
  std::uint32_t read_len = 0;     // read request
  std::uint32_t imm = 0;          // kWriteImm
  std::uint32_t psn = 0;
  Qpn src_qpn = 0;
  std::uint32_t qkey = 0;         // UD
  net::Ipv4Addr src_underlay;     // where acks go back to
};

struct MrInfo {
  Key lkey = 0;
  Key rkey = 0;
};

struct TunnelEntry {
  net::Gid phys_gid;
  std::uint32_t vni = 0;
};

struct FunctionInfo {
  FnId id = kPf;
  bool is_vf = false;
  net::MacAddr mac;
  net::Ipv4Addr ip;          // PF: underlay; SR-IOV VF: tenant address
  std::uint32_t vni = 0;     // tenant VNI (VXLAN offload mode)
  bool vxlan_offload = false;
  net::LinkId limiter_link = 0;  // virtual link modeling the VF rate limiter
};

struct DeviceConfig {
  std::string name = "rnic0";
  net::Ipv4Addr ip;   // PF underlay IP
  net::MacAddr mac;
  int num_vfs = 8;
  double link_gbps = 40.0;
  // One-way propagation is split half per link (tx link + rx link).
  sim::Time link_prop_oneway = sim::nanoseconds(200);
  bool iommu = false;  // SR-IOV passthrough pays VT-d per DMA
  int tunnel_cache_capacity = 128;
  // Resource-ID space: PD/MR/CQ/QP numbers are handed out from
  // (id_space << 20) + 1. Fabrics that live-migrate RNIC objects give every
  // device a disjoint space so a QP keeps its QPN on the destination host
  // with no chance of collision and no ID translation anywhere.
  std::uint32_t id_space = 0;
  DataPathCosts costs;
};

class RnicDevice : public mem::MmioDevice {
 public:
  RnicDevice(sim::EventLoop& loop, net::FluidNet& net, mem::HostPhysMap& phys,
             DeviceConfig config);
  ~RnicDevice() override;

  RnicDevice(const RnicDevice&) = delete;
  RnicDevice& operator=(const RnicDevice&) = delete;

  const DeviceConfig& config() const { return config_; }
  sim::EventLoop& loop() { return loop_; }
  mem::HostPhysMap& phys() { return phys_; }

  int num_functions() const { return static_cast<int>(fns_.size()); }
  FunctionInfo& fn(FnId id) { return fns_.at(id); }
  const FunctionInfo& fn(FnId id) const { return fns_.at(id); }
  // GID as derived from the function's current IP (index 0 only).
  net::Gid gid(FnId id) const;

  void attach(FabricRouter* router) { router_ = router; }
  net::LinkId tx_link() const { return tx_link_; }
  net::LinkId rx_link() const { return rx_link_; }
  // Doorbell BAR base in host physical address space.
  mem::Addr doorbell_bar() const { return doorbell_bar_; }

  // Reconfigures a function's network identity (host driver / cloud agent).
  void set_fn_address(FnId id, net::Ipv4Addr ip, net::MacAddr mac,
                      std::uint32_t vni, bool vxlan_offload);
  // Programs the hardware rate limiter of a VF (Gbps; kUncapped to clear).
  void set_vf_rate_limit(FnId id, double gbps);
  double vf_rate_limit_gbps(FnId id) const;

  // VXLAN offload tunnel table (SR-IOV baseline).
  void program_tunnel(net::Gid virt_gid, TunnelEntry entry);
  std::uint64_t tunnel_cache_misses() const { return tunnel_misses_; }
  std::uint64_t tunnel_cache_hits() const { return tunnel_hits_; }

  // ------------------------------------------------------------------
  // Control bookkeeping (latency is charged by the calling driver).
  // ------------------------------------------------------------------
  [[nodiscard]] Expected<PdId> alloc_pd(FnId fn);
  [[nodiscard]] Status dealloc_pd(PdId pd);
  [[nodiscard]] Expected<MrInfo> create_mr(FnId fn, PdId pd, mem::Addr va, std::uint64_t len,
                             std::uint32_t access,
                             std::vector<mem::Segment> hpa_segments);
  [[nodiscard]] Status destroy_mr(Key lkey);
  [[nodiscard]] Expected<Cqn> create_cq(FnId fn, int capacity);
  [[nodiscard]] Status destroy_cq(Cqn cq);
  [[nodiscard]] Expected<Qpn> create_qp(FnId fn, const QpInitAttr& attr);
  [[nodiscard]] Status destroy_qp(Qpn qpn);
  // Validates the Fig. 5 FSM; transition to ERROR flushes all WQEs and
  // kills in-flight flows (Table 2).
  [[nodiscard]] Status modify_qp(Qpn qpn, const QpAttr& attr, std::uint32_t mask);

  // Introspection (tests / RConntrack / Fig. 18 drain accounting).
  bool qp_exists(Qpn qpn) const;
  QpState qp_state(Qpn qpn) const;
  // Count of legal state transitions this QP has performed (modify_qp and
  // hardware error edges both count; corrupt_qp_for_test deliberately does
  // not). The qp-state auditor (src/check) uses it to detect state changes
  // that happened outside any legal transition path.
  std::uint32_t qp_state_transitions(Qpn qpn) const;
  // All live QPNs in ascending order (the QP table itself is unordered;
  // auditors and teardown paths need a deterministic walk).
  std::vector<Qpn> qp_numbers() const;
  // Test-only corruption hook: overwrites a QP's state and hardware QPC
  // directly, bypassing the Fig. 5 FSM validation and the ERROR-transition
  // hooks. Exists to prove the src/check auditors trip on illegal states.
  void corrupt_qp_for_test(Qpn qpn, QpState state, const QpAttr& attr);
  // The QPC as the *hardware* sees it — tests assert RConnrename rewrote it.
  const QpAttr& qp_hw_attr(Qpn qpn) const;
  FnId qp_fn(Qpn qpn) const;
  std::size_t qp_outstanding(Qpn qpn) const;
  std::size_t num_qps() const { return qps_.size(); }
  // RNIC processing time to force this QP to ERROR right now (Fig. 18).
  sim::Time qp_error_processing_time(Qpn qpn) const;

  // ------------------------------------------------------------------
  // Live migration (masq::Migrator).
  // ------------------------------------------------------------------
  // True when nothing about this QP is in motion: the send engine is idle,
  // no WQE is launched-but-unacked, no fluid flow is on the wire, and no
  // out-of-order arrival is buffered. extract_qp() requires this — an
  // in-flight message resolved its destination device at transmit time and
  // cannot follow the QP to another host.
  bool qp_quiescent(Qpn qpn) const;

  // The complete serializable state of one quiescent QP. Waiter promises
  // are shared-state handles: moving them keeps application coroutines
  // (window backpressure, next_rx_event) attached across the move.
  struct QpSnapshot {
    Qpn qpn = 0;
    FnId fn = kPf;
    QpInitAttr init;
    QpState state = QpState::kReset;
    std::uint32_t state_transitions = 0;
    QpAttr attr;
    std::deque<SendWr> send_queue;
    std::deque<RecvWr> recv_queue;
    std::uint32_t next_tx_psn = 0;
    std::uint32_t next_ack_psn = 0;
    std::uint32_t next_rx_psn = 0;
    std::vector<sim::Promise<bool>> window_waiters;
    std::vector<sim::Promise<bool>> rx_waiters;
  };
  struct CqSnapshot {
    Cqn cqn = 0;
    int capacity = 0;
    CompletionQueue::State state;
  };
  struct MrSnapshot {
    Key lkey = 0;
    FnId fn = kPf;
    PdId pd = 0;
    mem::Addr va = 0;
    std::uint64_t len = 0;
    std::uint32_t access = 0;
  };

  // Removes the object from this device and returns its state. extract_qp
  // fails with kInvalidState unless qp_quiescent(); none of these settle
  // waiters or flush WQEs — the state moves, it does not die.
  [[nodiscard]] Expected<QpSnapshot> extract_qp(Qpn qpn);
  [[nodiscard]] Expected<CqSnapshot> extract_cq(Cqn cqn);
  [[nodiscard]] Expected<MrSnapshot> extract_mr(Key lkey);

  // Re-instantiates an extracted object on this device under its original
  // ID (disjoint id_space ranges guarantee no collision). restore_mr takes
  // the MTT resolved against the *destination* VM's address chain — guest
  // virtual addresses survive migration, physical ones do not. restore_pd
  // re-homes a PD id onto a function of this device.
  [[nodiscard]] Status restore_qp(QpSnapshot snap);
  [[nodiscard]] Status restore_cq(CqSnapshot snap);
  [[nodiscard]] Status restore_mr(const MrSnapshot& snap,
                                  std::vector<mem::Segment> hpa_segments);
  [[nodiscard]] Status restore_pd(PdId pd, FnId fn);

  // Deterministic digests for the no-WQE-lost migration auditor: FNV-1a
  // over the QP's queued WQEs and PSN cursors / the CQ's undelivered CQEs.
  // Taken on the source before extraction and recomputed on the
  // destination after restore; any lost or duplicated WQE changes them.
  std::uint64_t qp_wqe_digest(Qpn qpn) const;
  std::uint64_t cq_digest(Cqn cqn) const;
  std::size_t qp_send_queue_depth(Qpn qpn) const;
  std::size_t qp_recv_queue_depth(Qpn qpn) const;
  std::size_t cq_depth(Cqn cqn) const;

  // Fires on every transition into ERROR — via modify_qp or a data-path
  // fault. RConntrack subscribes so its table never keeps an entry for a
  // dead QP. Hooks run synchronously inside the transition; subscribers
  // that need driver work must defer it to the loop. Returns a token the
  // subscriber passes to remove_qp_error_hook() if it can die before the
  // device.
  using QpErrorHookId = std::uint64_t;
  QpErrorHookId on_qp_error(std::function<void(Qpn)> fn) {
    qp_error_hooks_.emplace_back(next_qp_error_hook_, std::move(fn));
    return next_qp_error_hook_++;
  }
  void remove_qp_error_hook(QpErrorHookId id) {
    std::erase_if(qp_error_hooks_,
                  [id](const auto& h) { return h.first == id; });
  }

  // ------------------------------------------------------------------
  // Data path.
  // ------------------------------------------------------------------
  // `ring_doorbell=false` enqueues the WQE without kicking the engine —
  // callers then ring through the MMIO BAR (the MasQ/SR-IOV guest path).
  [[nodiscard]] Status post_send(Qpn qpn, const SendWr& wr,
                                 bool ring_doorbell = true);
  [[nodiscard]] Status post_recv(Qpn qpn, const RecvWr& wr);
  int poll_cq(Cqn cq, int max_entries, Completion* out);
  sim::Future<bool> cq_nonempty(Cqn cq);
  bool cq_overflowed(Cqn cq) const;

  // Doorbell MMIO: offset = doorbell slot * 8. Slots are dense per-QP
  // registers assigned at create/restore and recycled LIFO at destroy, so
  // the 64Ki-register BAR bounds *live* QPs regardless of QPN values
  // (id_space-salted QPNs would overflow a QPN-indexed BAR).
  void mmio_write(mem::Addr offset, std::uint64_t value) override;
  std::uint64_t mmio_read(mem::Addr offset) override;
  // BAR offset of this QP's doorbell register (guest drivers add it to
  // their mapped BAR base).
  std::uint64_t doorbell_offset(Qpn qpn) const;

  // Resolves when the next inbound message for `qpn` has been processed
  // (models an application spin-polling its buffer, as ib_write_lat does,
  // without burning simulated events).
  sim::Future<bool> next_rx_event(Qpn qpn);

  // Fabric side: a message arrived at this device's port.
  void deliver(Message msg);
  // Fabric side: ack/nak for a message this device sent.
  void on_ack(Qpn src_qpn, std::uint32_t psn, WcStatus status);

  struct Counters {
    std::uint64_t tx_msgs = 0;
    std::uint64_t rx_msgs = 0;
    std::uint64_t dropped_bad_state = 0;  // Table 2: ERROR QPs drop packets
    std::uint64_t dropped_no_route = 0;   // unroutable underlay address
    std::uint64_t dropped_no_qp = 0;
    std::uint64_t rnr_drops = 0;
    std::uint64_t remote_access_naks = 0;
    std::uint64_t retransmits = 0;  // RC timeout-driven resends
  };
  const Counters& counters() const { return counters_; }

 private:
  struct PendingSend {
    SendWr wr;
    bool done = false;
    WcStatus status = WcStatus::kSuccess;
    // Retransmission state: a copy of the wire message plus the remaining
    // retry budget. RC only (UD keeps no pending entry).
    Message msg;
    int retries_left = 0;
  };

  struct Qp {
    Qpn qpn = 0;
    FnId fn = kPf;
    QpInitAttr init;
    QpState state = QpState::kReset;
    std::uint32_t state_transitions = 0;  // bumped by transition_qp only
    QpAttr attr;  // hardware view of the QPC
    std::deque<SendWr> send_queue;
    std::deque<RecvWr> recv_queue;
    bool engine_running = false;
    std::uint32_t next_tx_psn = 0;
    std::uint32_t outstanding = 0;  // launched, not yet acked
    std::uint32_t next_ack_psn = 0;
    // PSN-keyed, but only ever probed by exact key (next_ack_psn walks one
    // PSN at a time), so no ordered container is needed.
    sim::FlatMap<std::uint32_t, PendingSend> pending;  // psn -> in-flight
    std::uint32_t next_rx_psn = 0;
    sim::FlatMap<std::uint32_t, Message> reorder;  // early arrivals
    std::vector<net::FlowId> active_flows;
    std::vector<sim::Promise<bool>> window_waiters;
    std::vector<sim::Promise<bool>> rx_waiters;
  };

  Qp* find_qp(Qpn qpn);
  const Qp* find_qp(Qpn qpn) const;
  std::uint32_t assign_doorbell_slot(Qpn qpn);
  void release_doorbell_slot(Qpn qpn);
  // The single legal mutation point for Qp::state (keeps the transition
  // count honest).
  void transition_qp(Qp& qp, QpState to);
  CompletionQueue* find_cq(Cqn cq);
  MemoryRegion* find_mr(Key lkey);

  // Engine coroutine draining one QP's send queue.
  sim::Task<void> send_engine(Qpn qpn);
  void kick_engine(Qpn qpn);
  // Launches one WQE onto the wire. Returns false if it failed locally.
  void launch_wqe(Qp& qp, SendWr wr);
  // Validates a local sge against the MR table. Returns the MR or null.
  MemoryRegion* validate_local_sge(const Qp& qp, const Sge& sge,
                                   WcStatus* status);

  void post_completion(Cqn cq, const Completion& c);
  void post_send_cqe(Qp& qp, const SendWr& wr, WcStatus status,
                     std::uint32_t byte_len);
  // Marks psn done and posts CQEs for every consecutive finished psn.
  void drain_acks(Qp& qp);
  // Ack-timeout handler: resends the pending message (with wire headers
  // rebuilt from the live QPC) until the retry budget exhausts, then
  // reports transport-retry-exceeded.
  void maybe_retry(Qpn qpn, std::uint32_t psn);
  void flush_qp(Qp& qp);  // -> ERROR semantics: flush queues + kill flows
  void release_window_slot(Qp& qp);

  // Receive-side handlers (run after rx engine occupancy).
  void process_incoming(Message msg);
  void handle_in_order(Qp& qp, Message& msg);
  void send_ack(const Message& msg, WcStatus status);

  // Builds the wire frame for a WQE; applies VXLAN offload when the
  // function runs in offload mode. Returns false if no tunnel entry.
  bool build_frame(const Qp& qp, const FunctionInfo& f, MsgOp op,
                   std::uint32_t payload_len, const UdDest* ud,
                   net::RoceFrame* out);
  const TunnelEntry* tunnel_lookup(net::Gid virt_gid, sim::Time* extra_cost);

  // Starts the fluid flow carrying `msg` toward its underlay destination.
  void transmit(Qp& qp, Message msg, bool expect_ack);

  sim::EventLoop& loop_;
  net::FluidNet& net_;
  mem::HostPhysMap& phys_;
  DeviceConfig config_;
  FabricRouter* router_ = nullptr;

  net::LinkId tx_link_;
  net::LinkId rx_link_;
  mem::Addr doorbell_bar_;

  std::vector<FunctionInfo> fns_;
  sim::FlatMap<PdId, FnId> pds_;
  sim::FlatMap<Key, std::unique_ptr<MemoryRegion>> mrs_;
  sim::FlatMap<Cqn, std::unique_ptr<CompletionQueue>> cqs_;
  sim::FlatMap<Qpn, std::unique_ptr<Qp>> qps_;
  PdId next_pd_ = 1;
  Key next_key_ = 1;
  Cqn next_cq_ = 1;
  Qpn next_qpn_ = 1;

  // Doorbell register file: QP -> slot, slot -> QP, recycled slots (LIFO
  // keeps the register file dense and the reuse order deterministic).
  sim::FlatMap<Qpn, std::uint32_t> doorbell_slots_;
  std::vector<Qpn> doorbell_owner_;  // slot index -> QPN (0 = free)
  std::vector<std::uint32_t> doorbell_free_;

  sim::ServiceQueue engine_;  // shared WQE pipeline (tx and rx)

  // VXLAN tunnel table: full table in "DRAM" + finite on-chip LRU cache.
  sim::FlatMap<net::Gid, TunnelEntry> tunnel_table_;
  std::list<net::Gid> tunnel_lru_;  // front = most recent
  sim::FlatMap<net::Gid, std::list<net::Gid>::iterator> tunnel_cache_;
  std::uint64_t tunnel_hits_ = 0;
  std::uint64_t tunnel_misses_ = 0;

  std::vector<std::pair<QpErrorHookId, std::function<void(Qpn)>>>
      qp_error_hooks_;
  QpErrorHookId next_qp_error_hook_ = 1;

  Counters counters_;
};

}  // namespace rnic
