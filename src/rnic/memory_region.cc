#include "rnic/memory_region.h"

#include <stdexcept>

namespace rnic {

template <typename Op>
void MemoryRegion::for_each_chunk(mem::Addr addr, std::uint64_t len,
                                  Op&& op) const {
  if (!contains(addr, len)) {
    throw std::out_of_range("MemoryRegion DMA outside registered range");
  }
  std::uint64_t offset = addr - va_;  // offset into the MTT-covered range
  std::uint64_t remaining = len;
  std::uint64_t buf_pos = 0;
  for (const auto& seg : segments_) {
    if (remaining == 0) break;
    if (offset >= seg.len) {
      offset -= seg.len;
      continue;
    }
    const std::uint64_t chunk = std::min<std::uint64_t>(seg.len - offset,
                                                        remaining);
    op(seg.addr + offset, buf_pos, chunk);
    buf_pos += chunk;
    remaining -= chunk;
    offset = 0;
  }
  if (remaining != 0) {
    throw std::logic_error("MemoryRegion: MTT does not cover range");
  }
}

void MemoryRegion::dma_read(mem::Addr addr, std::span<std::uint8_t> out) const {
  for_each_chunk(addr, out.size(),
                 [&](mem::Addr hpa, std::uint64_t pos, std::uint64_t n) {
                   phys_->read(hpa, out.subspan(pos, n));
                 });
}

void MemoryRegion::dma_write(mem::Addr addr,
                             std::span<const std::uint8_t> in) {
  for_each_chunk(addr, in.size(),
                 [&](mem::Addr hpa, std::uint64_t pos, std::uint64_t n) {
                   phys_->write(hpa, in.subspan(pos, n));
                 });
}

}  // namespace rnic
