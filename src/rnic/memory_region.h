// Memory region: a registered, pinned VA range plus its MTT entries.
//
// Registration resolves the application VA range down to host-physical
// segments (the device's memory translation table, Appendix B.2); DMA then
// moves real bytes through HostPhysMap without touching any page table —
// exactly the zero-copy property the hybrid I/O design relies on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mem/address_space.h"
#include "rnic/types.h"

namespace rnic {

class MemoryRegion {
 public:
  MemoryRegion(Key lkey, FnId fn, PdId pd, mem::Addr va, std::uint64_t len,
               std::uint32_t access, std::vector<mem::Segment> hpa_segments,
               mem::HostPhysMap* phys)
      : lkey_(lkey),
        fn_(fn),
        pd_(pd),
        va_(va),
        len_(len),
        access_(access),
        segments_(std::move(hpa_segments)),
        phys_(phys) {}

  Key lkey() const { return lkey_; }
  Key rkey() const { return lkey_; }  // single key namespace, as in mlx HCAs
  FnId fn() const { return fn_; }
  PdId pd() const { return pd_; }
  mem::Addr va() const { return va_; }
  std::uint64_t length() const { return len_; }
  std::uint32_t access() const { return access_; }
  const std::vector<mem::Segment>& mtt() const { return segments_; }

  // True if [addr, addr+len) lies inside the registered range.
  bool contains(mem::Addr addr, std::uint64_t len) const {
    return addr >= va_ && len <= len_ && addr - va_ <= len_ - len;
  }

  // DMA at `addr` (application VA) through the MTT. Bounds must have been
  // checked with contains(); violating them throws std::out_of_range.
  void dma_read(mem::Addr addr, std::span<std::uint8_t> out) const;
  void dma_write(mem::Addr addr, std::span<const std::uint8_t> in);

 private:
  // Maps a VA offset into (segment index, offset) pairs and applies `op`.
  template <typename Op>
  void for_each_chunk(mem::Addr addr, std::uint64_t len, Op&& op) const;

  Key lkey_;
  FnId fn_;
  PdId pd_;
  mem::Addr va_;
  std::uint64_t len_;
  std::uint32_t access_;
  std::vector<mem::Segment> segments_;
  mem::HostPhysMap* phys_;
};

}  // namespace rnic
