// Core RDMA object identifiers, work requests and completions — a compact,
// C++-flavoured mirror of the ibverbs data model the paper's Verbs operate
// on (Fig. 1 / Table 1).
#pragma once

#include <cstdint>
#include <string>

#include "mem/physical_memory.h"
#include "net/addr.h"

namespace rnic {

using Qpn = std::uint32_t;   // queue pair number (24 bits on the wire)
using Cqn = std::uint32_t;   // completion queue id
using Key = std::uint32_t;   // lkey / rkey
using PdId = std::uint32_t;  // protection domain id
using FnId = std::uint16_t;  // device function: 0 = PF, 1..N = VFs

inline constexpr FnId kPf = 0;

// QP states of Fig. 5.
enum class QpState : std::uint8_t {
  kReset,
  kInit,
  kRtr,   // ready to receive
  kRts,   // ready to send
  kSqd,   // send queue drain
  kSqe,   // send queue error
  kError,
};

const char* to_string(QpState s);

enum class QpType : std::uint8_t {
  kRc,  // reliable connection (the paper's main focus)
  kUd,  // unreliable datagram (§3.3.4)
};

enum class WrOpcode : std::uint8_t {
  kSend,
  kRdmaWrite,
  kRdmaWriteImm,  // write + 4-byte immediate; consumes a recv WQE remotely
  kRdmaRead,
};

enum class WcStatus : std::uint8_t {
  kSuccess,
  kLocProtErr,        // local sge outside MR / wrong PD / bad lkey
  kLocQpOpErr,        // posted in an illegal QP state
  kWrFlushErr,        // flushed because the QP entered ERROR (Table 2)
  kRemAccessErr,      // responder rejected rkey/bounds/PD
  kRnrRetryExc,       // receiver had no recv WQE posted
  kTransportRetryExc, // no ack: peer unreachable or dropping (Table 2)
  kCqOverflow,        // synthetic: completion dropped, CQ full
};

const char* to_string(WcStatus s);

enum class WcOpcode : std::uint8_t {
  kSend,
  kRdmaWrite,
  kRdmaRead,
  kRecv,
  kRecvRdmaWithImm,
};

// MR access flags (subset).
enum Access : std::uint32_t {
  kLocalWrite = 1u << 0,
  kRemoteWrite = 1u << 1,
  kRemoteRead = 1u << 2,
};

struct Sge {
  mem::Addr addr = 0;  // VA in the *application's* address space
  std::uint32_t length = 0;
  Key lkey = 0;
};

// Address handle for UD sends (§3.3.4): the destination travels with the
// WQE, which is exactly why MasQ must rename it per-WQE.
struct UdDest {
  net::Gid gid;
  Qpn qpn = 0;
  std::uint32_t qkey = 0;
};

struct SendWr {
  std::uint64_t wr_id = 0;
  WrOpcode opcode = WrOpcode::kSend;
  Sge sge;
  mem::Addr remote_addr = 0;  // write/read
  Key rkey = 0;               // write/read
  std::uint32_t imm = 0;      // kRdmaWriteImm payload
  bool signaled = true;
  UdDest ud;  // UD only
};

struct RecvWr {
  std::uint64_t wr_id = 0;
  Sge sge;
};

struct Completion {
  std::uint64_t wr_id = 0;
  WcStatus status = WcStatus::kSuccess;
  WcOpcode opcode = WcOpcode::kSend;
  std::uint32_t byte_len = 0;
  std::uint32_t imm = 0;  // valid when opcode == kRecvRdmaWithImm
  Qpn qpn = 0;
};

struct QpCaps {
  std::uint32_t max_send_wr = 128;
  std::uint32_t max_recv_wr = 128;
  std::uint32_t max_send_sge = 1;
  std::uint32_t max_recv_sge = 1;
};

struct QpInitAttr {
  QpType type = QpType::kRc;
  PdId pd = 0;
  Cqn send_cq = 0;
  Cqn recv_cq = 0;
  QpCaps caps;
};

// Fields of the QP context settable through modify_qp. The dest_gid a
// tenant writes here is *virtual*; what the RNIC must end up seeing is
// *physical* — the gap RConnrename closes.
struct QpAttr {
  QpState state = QpState::kReset;
  net::Gid dest_gid;
  Qpn dest_qpn = 0;
  std::uint32_t path_mtu = 1024;
  std::uint32_t rq_psn = 0;
  std::uint32_t sq_psn = 0;
  std::uint32_t qkey = 0;  // UD
};

enum QpAttrMask : std::uint32_t {
  kAttrState = 1u << 0,
  kAttrDestGid = 1u << 1,
  kAttrDestQpn = 1u << 2,
  kAttrPathMtu = 1u << 3,
  kAttrRqPsn = 1u << 4,
  kAttrSqPsn = 1u << 5,
  kAttrQkey = 1u << 6,
};

// Verb-level status. Control verbs either succeed or explain why not.
// [[nodiscard]] on the type: any call (including a co_await resume) whose
// result is a Status must consume it — a silently dropped status is a
// latent bug, so intentional drops are spelled `(void)` with a reason.
enum class [[nodiscard]] Status : std::uint8_t {
  kOk,
  kInvalidArgument,
  kNotFound,
  kPermissionDenied,  // security rule rejected the operation (RConntrack)
  kInvalidState,      // FSM transition not allowed (Fig. 5)
  kQueueFull,
  kResourceExhausted,
  kUnavailable,        // transient backend/controller failure: retryable
  kDeadlineExceeded,   // verb deadline expired before a definitive answer
};

// EAGAIN-class errors: a bounded retry with backoff may succeed.
inline bool is_retryable(Status s) { return s == Status::kUnavailable; }

const char* to_string(Status s);

// Verb result: a status plus a value that is only meaningful on kOk.
template <typename T>
struct [[nodiscard]] Expected {
  Status status = Status::kOk;
  T value{};

  bool ok() const { return status == Status::kOk; }
  static Expected error(Status s) { return Expected{s, T{}}; }
  static Expected of(T v) { return Expected{Status::kOk, std::move(v)}; }
};

}  // namespace rnic
