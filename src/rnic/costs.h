// Data-path cost model of the simulated RNIC.
//
// Every constant is calibrated against a specific number in the paper; the
// anchor is cited next to each field. Control-path (verb) costs live in
// fabric/calibration.h with the rest of the testbed parameters.
#pragma once

#include "sim/time.h"

namespace rnic {

struct DataPathCosts {
  // PF transmit pipeline latency, doorbell to first byte on the wire.
  // Anchor: Fig. 8a — 2 B host-to-host send latency 0.8 us one-way
  // (0.2 us post_send + tx + wire + rx + 0.03 us poll).
  sim::Time tx_proc = sim::nanoseconds(180);

  // Receive pipeline for a SEND: consume recv WQE, DMA payload, raise CQE.
  sim::Time rx_proc_send = sim::nanoseconds(180);

  // Receive pipeline for an RDMA WRITE: no WQE consumption, DMA only.
  // Anchor: Fig. 8a — write latency 0.7 us vs send 0.8 us.
  sim::Time rx_proc_write = sim::nanoseconds(80);

  // Serial WQE-engine occupancy per message (tx or rx). Bounds the
  // device's message rate. Anchor: Fig. 21 — KVS peaks at 9.7 Mops when
  // the RNIC is the bottleneck (each op = one rx + one tx on the server).
  sim::Time engine_gap = sim::nanoseconds(51);

  // Extra per-message latency when the QP lives on a VF (more complex
  // on-NIC routing/resource management). Anchor: Fig. 8a/9a — VF-based
  // MasQ/SR-IOV 1.1 us vs PF 0.8 us.
  sim::Time vf_extra_tx = sim::nanoseconds(150);
  sim::Time vf_extra_rx = sim::nanoseconds(150);

  // Per-DMA IOMMU translation when the device is passed through with
  // VT-d (SR-IOV baseline only; MasQ maps HPAs directly and skips this).
  // Anchor: Fig. 21 — SR-IOV peak throughput ~1 Mops below MasQ.
  sim::Time iommu_per_dma = sim::nanoseconds(55);

  // VXLAN tunnel-table lookup in the on-NIC cache (SR-IOV offload).
  // A miss fetches the entry from host DRAM. Anchor: §1's discussion of
  // hardware-solution scalability (stat throughput -50% at 120 clients).
  sim::Time tunnel_cache_hit = sim::nanoseconds(10);
  sim::Time tunnel_cache_miss = sim::microseconds(2.0);

  // Sender-side penalty when the responder has no recv WQE (RNR retries
  // exhausted).
  sim::Time rnr_retry_delay = sim::milliseconds(1.0);

  // RNIC processing share of forcing a QP to ERROR (Fig. 18): 253 us on
  // the PF, 518 us on a VF, plus a drain surcharge under heavy traffic
  // (838 us measured with a saturating flow).
  sim::Time qp_error_pf = sim::microseconds(150);
  sim::Time qp_error_vf = sim::microseconds(415);
  sim::Time qp_error_drain_per_wqe = sim::microseconds(5);
};

}  // namespace rnic
