#include "rnic/qp_state.h"

namespace rnic {

const char* to_string(QpState s) {
  switch (s) {
    case QpState::kReset: return "RESET";
    case QpState::kInit: return "INIT";
    case QpState::kRtr: return "RTR";
    case QpState::kRts: return "RTS";
    case QpState::kSqd: return "SQD";
    case QpState::kSqe: return "SQE";
    case QpState::kError: return "ERROR";
  }
  return "?";
}

const char* to_string(WcStatus s) {
  switch (s) {
    case WcStatus::kSuccess: return "success";
    case WcStatus::kLocProtErr: return "local-protection-error";
    case WcStatus::kLocQpOpErr: return "local-qp-operation-error";
    case WcStatus::kWrFlushErr: return "work-request-flushed";
    case WcStatus::kRemAccessErr: return "remote-access-error";
    case WcStatus::kRnrRetryExc: return "rnr-retry-exceeded";
    case WcStatus::kTransportRetryExc: return "transport-retry-exceeded";
    case WcStatus::kCqOverflow: return "cq-overflow";
  }
  return "?";
}

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kInvalidArgument: return "invalid-argument";
    case Status::kNotFound: return "not-found";
    case Status::kPermissionDenied: return "permission-denied";
    case Status::kInvalidState: return "invalid-state";
    case Status::kQueueFull: return "queue-full";
    case Status::kResourceExhausted: return "resource-exhausted";
    case Status::kUnavailable: return "unavailable";
    case Status::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

bool modify_allowed(QpState from, QpState to) {
  // Any state can be forced to ERROR, and ERROR/any can be torn back to
  // RESET (dashed edges of Fig. 5).
  if (to == QpState::kError) return true;
  if (to == QpState::kReset) return true;
  switch (from) {
    case QpState::kReset: return to == QpState::kInit;
    case QpState::kInit: return to == QpState::kRtr || to == QpState::kInit;
    case QpState::kRtr: return to == QpState::kRts;
    case QpState::kRts: return to == QpState::kSqd;
    case QpState::kSqd: return to == QpState::kRts;
    case QpState::kSqe: return to == QpState::kRts;
    case QpState::kError: return false;  // only RESET/ERROR, handled above
  }
  return false;
}

bool hw_error_transition_allowed(QpState from, QpState to) {
  if (to == QpState::kError) return true;
  if (to == QpState::kSqe) return from == QpState::kRts;
  return false;
}

bool can_post_send(QpState s) {
  // Table 2: posting send requests is allowed even in ERROR (they flush).
  switch (s) {
    case QpState::kReset:
    case QpState::kInit:
      return false;
    default:
      return true;
  }
}

bool can_post_recv(QpState s) {
  // Recv WQEs may be posted from INIT onward (standard verbs semantics),
  // including ERROR (Table 2).
  return s != QpState::kReset;
}

bool can_transmit(QpState s) { return s == QpState::kRts; }

bool can_accept_packets(QpState s) {
  switch (s) {
    case QpState::kRtr:
    case QpState::kRts:
    case QpState::kSqd:
    case QpState::kSqe:  // send side broken; receive still works
      return true;
    default:
      return false;  // RESET/INIT/ERROR: incoming packets dropped (Table 2)
  }
}

}  // namespace rnic
