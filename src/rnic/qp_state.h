// The QP state machine of the paper's Fig. 5 and the behaviour matrix of
// Table 2. RConntrack's enforcement hinges on two properties encoded here:
// any state may transition to ERROR via modify_qp, and a QP in ERROR
// neither sends nor accepts packets while still letting the application
// post (and immediately reap flush-error completions).
#pragma once

#include "rnic/types.h"

namespace rnic {

// True if modify_qp may move a QP from `from` to `to` (dashed/solid edges
// of Fig. 5 that are driver-initiated).
bool modify_allowed(QpState from, QpState to);

// True if the hardware itself may force this transition on a completion
// error (RTS -> SQE, any -> ERROR).
bool hw_error_transition_allowed(QpState from, QpState to);

// Table 2, application row: posting is *allowed* in ERROR (entries flush).
bool can_post_send(QpState s);
bool can_post_recv(QpState s);

// True if the send engine may transmit in this state.
bool can_transmit(QpState s);
// True if incoming packets are accepted (otherwise dropped, Table 2).
bool can_accept_packets(QpState s);

}  // namespace rnic
