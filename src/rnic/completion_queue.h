// Completion queue: fixed-capacity CQE ring with coroutine wakeups.
//
// poll_cq never blocks (it mirrors ibv_poll_cq); coroutine applications use
// nonempty() to sleep until a CQE lands instead of busy-polling simulated
// time away. Overflow drops the CQE and latches an error flag, matching
// real RNIC behaviour when the consumer falls behind.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "rnic/types.h"
#include "sim/task.h"

namespace rnic {

class CompletionQueue {
 public:
  CompletionQueue(sim::EventLoop& loop, Cqn id, int capacity)
      : loop_(loop), id_(id), capacity_(capacity) {}

  Cqn id() const { return id_; }
  int capacity() const { return capacity_; }
  std::size_t depth() const { return ring_.size(); }
  bool overflowed() const { return overflowed_; }

  // Hardware side: appends a CQE and wakes waiters. Returns false (and
  // latches the overflow flag) when the ring is full.
  bool push(const Completion& c) {
    if (static_cast<int>(ring_.size()) >= capacity_) {
      overflowed_ = true;
      return false;
    }
    ring_.push_back(c);
    wake();
    return true;
  }

  // Consumer side: pops up to max_entries CQEs; returns the count.
  int poll(int max_entries, Completion* out) {
    int n = 0;
    while (n < max_entries && !ring_.empty()) {
      out[n++] = ring_.front();
      ring_.pop_front();
    }
    return n;
  }

  // Live-migration support: the CQ's full consumer-visible state. Promises
  // are shared-state handles, so moving the waiters keeps application
  // coroutines blocked in nonempty() attached to the restored CQ.
  struct State {
    std::deque<Completion> ring;
    std::vector<sim::Promise<bool>> waiters;
    bool overflowed = false;
  };
  State extract_state() {
    return State{std::move(ring_), std::move(waiters_), overflowed_};
  }
  void restore_state(State st) {
    ring_ = std::move(st.ring);
    waiters_ = std::move(st.waiters);
    overflowed_ = st.overflowed;
    // push() wakes on arrival, so a nonempty ring implies no waiters; a
    // snapshot can only hold one of the two.
    if (!ring_.empty()) wake();
  }

  // Walks undelivered CQEs front-to-back without consuming them (migration
  // digests hash the ring contents, not just its depth).
  template <typename F>
  void for_each_cqe(F&& f) const {
    for (const Completion& c : ring_) f(c);
  }

  // Resolves when at least one CQE is available (immediately if nonempty).
  sim::Future<bool> nonempty() {
    sim::Promise<bool> p(loop_);
    auto f = p.get_future();
    if (!ring_.empty()) {
      p.set_value(true);
    } else {
      waiters_.push_back(std::move(p));
    }
    return f;
  }

 private:
  void wake() {
    for (auto& w : waiters_) w.set_value(true);
    waiters_.clear();
  }

  sim::EventLoop& loop_;
  Cqn id_;
  int capacity_;
  std::deque<Completion> ring_;
  std::vector<sim::Promise<bool>> waiters_;
  bool overflowed_ = false;
};

}  // namespace rnic
