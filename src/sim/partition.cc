#include "sim/partition.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/ready_queue.h"

namespace sim {

// Persistent worker pool. One round = one window. Partition→worker
// assignment is STATIC — worker w owns every partition p with
// p % nworkers == w (the coordinator thread doubles as worker 0) — for two
// reasons: it keeps a partition's coroutine frames on one thread for the
// whole run, so the arena's thread-local free lists actually hit (dynamic
// work-stealing sends every freed frame to a different thread's list and
// degrades allocation to the mutex-guarded global slab path), and it
// avoids per-round atomic work-claiming. Determinism does not depend on
// the assignment at all — only on each partition's own event order.
struct PartitionGroup::Pool {
  Pool(std::vector<std::unique_ptr<EventLoop>>& loops, std::size_t workers,
       WindowObserver* const* observer)
      : loops_(loops),
        nworkers_(workers),
        observer_(observer),
        errors_(loops.size()) {
    threads_.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w) {
      threads_.emplace_back([this, w] { worker_main(w); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  // Runs one window across all partitions; called from the coordinator
  // thread, which works slice 0. Rethrows the lowest-index partition
  // error, if any.
  void run_round(Time end) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      end_ = end;
      remaining_.store(nworkers_, std::memory_order_relaxed);
      ++round_;
    }
    start_cv_.notify_all();
    drain(0);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) != 1) {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [this] {
        return remaining_.load(std::memory_order_acquire) == 0;
      });
    }
    for (std::size_t i = 0; i < errors_.size(); ++i) {
      if (errors_[i]) {
        std::exception_ptr e = errors_[i];
        errors_[i] = nullptr;
        std::rethrow_exception(e);
      }
    }
  }

 private:
  void worker_main(std::size_t w) {
    std::uint64_t seen_round = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        start_cv_.wait(lk,
                       [&] { return shutdown_ || round_ != seen_round; });
        if (shutdown_) return;
        seen_round = round_;
      }
      drain(w);
      if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(mu_);
        done_cv_.notify_all();
      }
    }
  }

  void drain(std::size_t w) {
    // The observer pointer is published by the round-start handshake
    // (written between windows, read after observing the new round), so a
    // plain load here is race-free.
    WindowObserver* obs = *observer_;
    for (std::size_t i = w; i < loops_.size(); i += nworkers_) {
      if (obs) obs->on_window_begin(i);
      try {
        loops_[i]->run_before(end_);
      } catch (...) {
        errors_[i] = std::current_exception();
      }
      // end fires even when the window threw: the partition's window is
      // over either way, and a stuck-open window would poison the
      // observer's open-window accounting.
      if (obs) obs->on_window_end(i);
    }
  }

  std::vector<std::unique_ptr<EventLoop>>& loops_;
  std::size_t nworkers_;
  WindowObserver* const* observer_;  // points at the group's member
  std::vector<std::exception_ptr> errors_;  // slot i owned by its worker
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t round_ = 0;
  Time end_ = 0;
  std::atomic<std::size_t> remaining_{0};
  bool shutdown_ = false;
};

PartitionGroup::PartitionGroup(std::size_t partitions, std::size_t threads) {
  if (partitions == 0) partitions = 1;
  loops_.reserve(partitions);
  for (std::size_t i = 0; i < partitions; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
  }
  if (threads == 0) threads = 1;
  if (threads > partitions) threads = partitions;
  threads_ = threads;
  if (threads_ > 1) {
    // The coordinator thread doubles as worker 0; Pool spawns threads-1.
    pool_ = std::make_unique<Pool>(loops_, threads_, &observer_);
  }
}

PartitionGroup::~PartitionGroup() = default;

void PartitionGroup::run_window_before(Time end) {
  if (pool_) {
    pool_->run_round(end);
    return;
  }
  // Single-threaded: plain loop, no synchronization at all. Same event
  // order as the pooled path by construction, including the observer
  // bracketing (window end fires even when the window threw).
  std::exception_ptr first;
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    if (observer_) observer_->on_window_begin(i);
    try {
      loops_[i]->run_before(end);
    } catch (...) {
      if (!first) first = std::current_exception();
    }
    if (observer_) observer_->on_window_end(i);
  }
  if (first) std::rethrow_exception(first);
}

Time PartitionGroup::min_next_event_time() {
  Time t = ReadyQueue::kMaxTime;
  for (auto& loop : loops_) {
    const Time n = loop->next_event_time();
    if (n < t) t = n;
  }
  return t;
}

bool PartitionGroup::all_empty() const {
  for (const auto& loop : loops_) {
    if (!loop->empty()) return false;
  }
  return true;
}

void PartitionGroup::enable_trace() {
  for (auto& loop : loops_) loop->enable_trace();
}

std::uint64_t PartitionGroup::total_events() const {
  std::uint64_t n = 0;
  for (const auto& loop : loops_) n += loop->events_executed();
  return n;
}

Time PartitionGroup::last_event_time() const {
  Time t = 0;
  for (const auto& loop : loops_) {
    if (loop->last_event_time() > t) t = loop->last_event_time();
  }
  return t;
}

std::uint64_t PartitionGroup::combined_trace_hash() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& loop : loops_) {
    h = (h ^ loop->trace_hash()) * 0x100000001b3ull;
  }
  return h;
}

}  // namespace sim
