// Sample accumulator with percentile support; used by every benchmark.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sim {

class Stats {
 public:
  void add(double sample);
  void clear();

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  double sum() const { return sum_; }

  // p in [0, 100]; linear interpolation between closest ranks.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  // "n=1000 mean=1.23 p50=1.20 p99=2.41 min=1.01 max=3.20"
  std::string summary() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

}  // namespace sim
