// Declared ownership model for shared mutable state (DESIGN.md §16).
//
// The partition-parallel engine's safety claim is an *ownership* claim:
// every piece of mutable state is either (a) owned by exactly one
// partition and touched only by the thread running that partition's
// window, (b) touched only by the single-threaded coordinator between
// windows (at the barrier), or (c) deliberately shared, with its own
// synchronization story. The three macros below make that claim explicit
// at every namespace-scope global, function-local static, and mutable
// static member in src/ — the places where state can silently escape the
// per-partition object graphs.
//
// The macros expand to nothing: they are source-level annotations read by
// the `shared-state` pass of tools/masq_lint.py, which (1) flags any
// shared mutable object that carries none of them, (2) rejects a
// MASQ_SHARED_STATE with an empty reason, and (3) cross-checks that
// MASQ_BARRIER_ONLY symbols are never referenced from window-side code
// (sim/event_loop machinery, fabric/scale_partition, rnic/, the masq/
// hot paths). The runtime half of the same contract is the
// "partition-ownership" auditor in src/check/ownership_audit.h, which
// tags live objects with their owning partition and verifies every
// access at MASQ_CHECK=1; the CI `tsan` job is the third, lowest-level
// layer of the same proof.
//
//   MASQ_PARTITION_LOCAL   The object is per-partition (or per-thread by
//                          construction): only the thread currently
//                          running its partition's window may touch it.
//   MASQ_BARRIER_ONLY      Coordinator-only: read or written exclusively
//                          between windows, when no partition window is
//                          open. Referencing such a symbol from
//                          window-side code is a lint error.
//   MASQ_SHARED_STATE(why) Genuinely cross-thread: the annotation must
//                          say why that is safe (what lock, atomic, or
//                          immutability argument protects it).
#pragma once

#include <cstddef>

#define MASQ_PARTITION_LOCAL
#define MASQ_BARRIER_ONLY
#define MASQ_SHARED_STATE(reason)

namespace sim {

class EventLoop;

// Observation seam for the partition-ownership auditor (src/check).
// EventLoop invokes the probe — when one is installed — on every state
// mutation (schedule, event execution); cost when unset is one branch.
// The probe must only observe: scheduling events or mutating the loop
// from inside a probe callback would perturb the trace the auditor
// promises to leave byte-identical.
class LoopAccessProbe {
 public:
  virtual ~LoopAccessProbe() = default;
  virtual void on_loop_access(const EventLoop& loop, const char* op) = 0;
};

// Window-lifecycle seam: PartitionGroup brackets every partition's window
// with begin/end, called on the worker thread that runs the window (the
// coordinator thread doubles as worker 0). Between a matched end and the
// next begin of the same round — and between rounds — the group is in its
// barrier phase.
class WindowObserver {
 public:
  virtual ~WindowObserver() = default;
  virtual void on_window_begin(std::size_t partition) = 0;
  virtual void on_window_end(std::size_t partition) = 0;
};

}  // namespace sim
