// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic component takes an explicit Rng (or a seed) so that all
// experiments are reproducible; nothing in the code base reads an OS entropy
// source or the wall clock.
#pragma once

#include <cstdint>

namespace sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double next_double();

  // Exponential with the given mean (> 0).
  double next_exponential(double mean);

  // True with probability p (clamped to [0,1]).
  bool next_bool(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace sim
