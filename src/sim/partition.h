// Partition-parallel execution of deterministic event loops (DESIGN.md §13).
//
// A PartitionGroup owns N independent sim::EventLoops ("partitions") and
// advances them in lockstep windows: run_window_before(end) executes, in
// every partition, all events with timestamp strictly < end — possibly on
// different worker threads — then returns once all partitions have reached
// the barrier. Between windows the single-threaded caller (the
// "coordinator") may inspect partitions and schedule cross-partition
// deliveries at times >= end.
//
// Determinism contract: a partition's event schedule is a pure function of
// what was scheduled into it, executed in (time, seq) order by its own
// loop. Worker threads only decide *which CPU* runs a partition's window,
// never the order of events inside it, so every per-partition trace hash —
// and therefore combined_trace_hash(), which folds them in partition
// order — is byte-identical at 1, 2, or N worker threads.
//
// Threading: partitions share no mutable state. Coroutine frames use
// thread-local free lists over a process-wide slab registry (sim/arena.h),
// so a frame allocated while partition P ran on thread A is safely freed
// when P later runs on thread B.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_loop.h"
#include "sim/ownership.h"
#include "sim/time.h"

namespace sim {

class PartitionGroup {
 public:
  // `threads` caps worker parallelism; clamped to [1, partitions].
  PartitionGroup(std::size_t partitions, std::size_t threads);
  ~PartitionGroup();
  PartitionGroup(const PartitionGroup&) = delete;
  PartitionGroup& operator=(const PartitionGroup&) = delete;

  std::size_t size() const { return loops_.size(); }
  std::size_t threads() const { return threads_; }
  EventLoop& loop(std::size_t i) { return *loops_[i]; }
  const EventLoop& loop(std::size_t i) const { return *loops_[i]; }

  // Runs every partition's events with timestamp < end (see
  // EventLoop::run_before), in parallel across the worker pool, and blocks
  // until all partitions reach the barrier. If any partition's window
  // throws (e.g. a root task error), the first exception — first by
  // partition index, for determinism — is rethrown here after the barrier.
  void run_window_before(Time end);

  // Earliest pending event across all partitions, or ReadyQueue::kMaxTime
  // if every partition is drained. Coordinator uses this to pick the next
  // window and to detect completion. (Non-const: peeking may lazily settle
  // a loop's ready queue.)
  Time min_next_event_time();

  bool all_empty() const;

  void enable_trace();

  // Ownership-audit seam (src/check): when set, the observer is bracketed
  // around every partition window — on_window_begin(p) / on_window_end(p)
  // run on the thread that runs p's window (exception or not), so the
  // observer can maintain per-thread window context and an open-window
  // count. Set between windows, before the round that should see it; the
  // round-start synchronization publishes it to workers. Pass nullptr to
  // clear. Observers observe only — mutating any loop from a callback
  // would break the determinism contract above.
  void set_window_observer(WindowObserver* observer) {
    observer_ = observer;
  }

  // ---- merged observability ----
  std::uint64_t total_events() const;
  // Latest executed-event timestamp across partitions (the simulation's
  // true end time; window barriers advance now() past it).
  Time last_event_time() const;
  // FNV-1a fold of the per-partition trace hashes, in partition order.
  std::uint64_t combined_trace_hash() const;

 private:
  struct Pool;  // worker threads; defined in partition.cc

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::size_t threads_;
  WindowObserver* observer_ = nullptr;
  std::unique_ptr<Pool> pool_;
};

}  // namespace sim
