#include "sim/faults.h"

#include <charconv>
#include <sstream>
#include <memory>
#include <utility>

namespace sim {

const char* to_string(FaultSite s) {
  switch (s) {
    case FaultSite::kVqTransit:
      return "vq_transit";
    case FaultSite::kCmdExec:
      return "cmd_exec";
    case FaultSite::kCacheEntry:
      return "cache_entry";
    case FaultSite::kSdnControl:
      return "sdn_control";
    case FaultSite::kQpError:
      return "qp_error";
  }
  return "?";
}

const char* to_string(FaultAction a) {
  switch (a) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kDrop:
      return "drop";
    case FaultAction::kDelay:
      return "delay";
    case FaultAction::kDuplicate:
      return "duplicate";
    case FaultAction::kFail:
      return "fail";
    case FaultAction::kExpire:
      return "expire";
    case FaultAction::kOutageBegin:
      return "outage_begin";
    case FaultAction::kOutageEnd:
      return "outage_end";
    case FaultAction::kForceError:
      return "force_error";
  }
  return "?";
}

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_double(std::string_view v, double* out) {
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), *out);
  return ec == std::errc{} && ptr == v.data() + v.size();
}

bool parse_i64(std::string_view v, std::int64_t* out) {
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), *out);
  return ec == std::errc{} && ptr == v.data() + v.size();
}

}  // namespace

bool FaultConfig::parse(std::string_view text, FaultConfig* out,
                        std::string* err) {
  FaultConfig cfg;
  std::size_t line_no = 0;
  auto fail = [&](std::string_view line, std::string_view why) {
    if (err) {
      std::ostringstream os;
      os << "line " << line_no << ": " << why << ": '" << line << "'";
      *err = os.str();
    }
    return false;
  };
  while (!text.empty()) {
    ++line_no;
    const auto nl = text.find('\n');
    std::string_view raw = text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    std::string_view line = raw;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return fail(raw, "expected key = value");
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view val = trim(line.substr(eq + 1));
    double* prob = nullptr;
    if (key == "vq_drop_p") prob = &cfg.vq_drop_p;
    else if (key == "vq_dup_p") prob = &cfg.vq_dup_p;
    else if (key == "vq_delay_p") prob = &cfg.vq_delay_p;
    else if (key == "cmd_fail_p") prob = &cfg.cmd_fail_p;
    else if (key == "cache_expire_p") prob = &cfg.cache_expire_p;
    if (prob != nullptr) {
      if (!parse_double(val, prob) || *prob < 0.0 || *prob > 1.0) {
        return fail(raw, "expected probability in [0,1]");
      }
      continue;
    }
    if (key == "vq_delay_min_us" || key == "vq_delay_max_us") {
      std::int64_t us = 0;
      if (!parse_i64(val, &us) || us < 0) {
        return fail(raw, "expected non-negative integer microseconds");
      }
      (key == "vq_delay_min_us" ? cfg.vq_delay_min : cfg.vq_delay_max) =
          microseconds(us);
      continue;
    }
    if (key == "sdn_outage_ms") {
      const auto colon = val.find(':');
      std::int64_t begin_ms = 0, end_ms = 0;
      if (colon == std::string_view::npos ||
          !parse_i64(trim(val.substr(0, colon)), &begin_ms) ||
          !parse_i64(trim(val.substr(colon + 1)), &end_ms) ||
          begin_ms < 0 || end_ms <= begin_ms) {
        return fail(raw, "expected <begin>:<end> in ms with begin < end");
      }
      cfg.sdn_outages.push_back(
          {milliseconds(begin_ms), milliseconds(end_ms)});
      continue;
    }
    return fail(raw, "unknown key");
  }
  if (cfg.vq_delay_max < cfg.vq_delay_min) {
    line_no = 0;
    return fail("", "vq_delay_max_us < vq_delay_min_us");
  }
  *out = cfg;
  return true;
}

FaultPlane::FaultPlane(EventLoop& loop, FaultConfig config,
                       std::uint64_t seed)
    : loop_(loop), cfg_(std::move(config)), seed_(seed), rng_(seed) {}

void FaultPlane::arm(std::function<void(bool)> sdn_down) {
  if (armed_) return;
  armed_ = true;
  auto shared = std::make_shared<std::function<void(bool)>>(
      std::move(sdn_down));
  for (const OutageWindow& w : cfg_.sdn_outages) {
    loop_.schedule_at(w.begin, [this, shared] {
      record(FaultSite::kSdnControl, FaultAction::kOutageBegin, 0);
      (*shared)(true);
    });
    loop_.schedule_at(w.end, [this, shared] {
      record(FaultSite::kSdnControl, FaultAction::kOutageEnd, 0);
      (*shared)(false);
    });
  }
}

FaultDecision FaultPlane::on_vq_transit(std::uint64_t cmd_id) {
  // One fault per transit, tried in fixed order so a given rng stream maps
  // to one deterministic decision sequence.
  if (cfg_.vq_drop_p > 0 && rng_.next_bool(cfg_.vq_drop_p)) {
    record(FaultSite::kVqTransit, FaultAction::kDrop, cmd_id);
    return {FaultAction::kDrop, 0};
  }
  if (cfg_.vq_dup_p > 0 && rng_.next_bool(cfg_.vq_dup_p)) {
    record(FaultSite::kVqTransit, FaultAction::kDuplicate, cmd_id);
    return {FaultAction::kDuplicate, 0};
  }
  if (cfg_.vq_delay_p > 0 && rng_.next_bool(cfg_.vq_delay_p)) {
    const Time d =
        cfg_.vq_delay_min +
        static_cast<Time>(rng_.next_below(static_cast<std::uint64_t>(
            cfg_.vq_delay_max - cfg_.vq_delay_min + 1)));
    record(FaultSite::kVqTransit, FaultAction::kDelay, cmd_id, d);
    return {FaultAction::kDelay, d};
  }
  return {};
}

bool FaultPlane::fail_command(std::uint64_t detail) {
  if (force_cmd_failures_) {
    record(FaultSite::kCmdExec, FaultAction::kFail, detail);
    return true;
  }
  if (cfg_.cmd_fail_p > 0 && rng_.next_bool(cfg_.cmd_fail_p)) {
    record(FaultSite::kCmdExec, FaultAction::kFail, detail);
    return true;
  }
  return false;
}

bool FaultPlane::expire_cache_entry(std::uint64_t key_hash) {
  if (cfg_.cache_expire_p > 0 && rng_.next_bool(cfg_.cache_expire_p)) {
    record(FaultSite::kCacheEntry, FaultAction::kExpire, key_hash);
    return true;
  }
  return false;
}

void FaultPlane::inject_qp_error_at(Time t, std::uint64_t qpn,
                                    std::function<void()> fire) {
  loop_.schedule_at(t, [this, qpn, fire = std::move(fire)] {
    record(FaultSite::kQpError, FaultAction::kForceError, qpn);
    fire();
  });
}

void FaultPlane::record(FaultSite site, FaultAction action,
                        std::uint64_t detail, Time delay) {
  log_.push_back({loop_.now(), site, action, detail, delay});
}

std::string FaultPlane::dump_log() const {
  std::ostringstream os;
  os << "# fault replay log: seed=" << seed_ << " faults=" << log_.size()
     << "\n";
  for (const FaultRecord& r : log_) {
    os << r.at << " " << to_string(r.site) << " " << to_string(r.action)
       << " detail=" << r.detail;
    if (r.delay != 0) os << " delay=" << r.delay;
    os << "\n";
  }
  return os.str();
}

}  // namespace sim
