// Small-buffer-optimized callback for the event loop's hot path.
//
// sim::Callback replaces std::function<void()> in every scheduling
// signature. The differences that matter at 1M-VM event rates:
//   * captures up to kInlineBytes live inside the Callback itself — no
//     heap allocation per scheduled event (std::function's SBO is
//     implementation-defined and GCC's tops out at 16 bytes, below the
//     typical [this, promise, weak_ptr] capture set);
//   * move-only — the old priority_queue forced a std::function *copy* of
//     every callback on pop (top() is const); the ready queue moves nodes,
//     so the wrapper no longer needs copyability and callers may capture
//     move-only state;
//   * one indirect call to invoke, one to destroy, no virtual dispatch.
//
// Oversized captures still work (they fall back to a heap box) so call
// sites never have to know the limit; the event-loop microbench pins the
// inline path as the common case.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace sim {

class Callback {
 public:
  // Sized for the repo's largest hot capture set (HostAgent lane flush:
  // loop ref + this + shard index + weak_ptr control block = 40 bytes).
  static constexpr std::size_t kInlineBytes = 40;

  Callback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule_* call site.
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = [](Callback& self) {
        (*std::launder(reinterpret_cast<D*>(self.storage_)))();
      };
      manage_ = [](Callback& self, Callback* dst) {
        D* src = std::launder(reinterpret_cast<D*>(self.storage_));
        if (dst != nullptr) {
          ::new (static_cast<void*>(dst->storage_)) D(std::move(*src));
        }
        src->~D();
      };
    } else {
      // Heap fallback for oversized or throwing-move captures. The boxed
      // pointer always fits inline, so moves stay trivial.
      auto boxed = std::make_unique<D>(std::forward<F>(f));
      ::new (static_cast<void*>(storage_)) D*(boxed.release());
      invoke_ = [](Callback& self) {
        (**std::launder(reinterpret_cast<D**>(self.storage_)))();
      };
      manage_ = [](Callback& self, Callback* dst) {
        D** src = std::launder(reinterpret_cast<D**>(self.storage_));
        if (dst != nullptr) {
          ::new (static_cast<void*>(dst->storage_)) D*(*src);
        } else {
          delete *src;
        }
        // The stored D* itself is trivially destructible; nothing to do.
      };
    }
  }

  Callback(Callback&& o) noexcept { move_from(o); }
  Callback& operator=(Callback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;
  Callback& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  ~Callback() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(*this); }

 private:
  void reset() {
    if (manage_ != nullptr) manage_(*this, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }
  void move_from(Callback& o) {
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    if (o.manage_ != nullptr) o.manage_(o, this);
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  void (*invoke_)(Callback&) = nullptr;
  // manage(self, dst): dst != null -> move self's callable into dst and
  // destroy self's; dst == null -> destroy self's callable.
  void (*manage_)(Callback&, Callback*) = nullptr;
};

}  // namespace sim
