// Single-server FIFO resource: items are served one at a time, each
// occupying the server for its service time. Models serial hardware
// pipelines (an RNIC's WQE engine, an FFR forwarding core).
#pragma once

#include <cstdint>
#include <deque>

#include "sim/event_loop.h"
#include "sim/task.h"
#include "sim/time.h"

namespace sim {

class ServiceQueue {
 public:
  explicit ServiceQueue(EventLoop& loop) : loop_(loop) {}

  // Completes when this item's service finishes (FIFO order).
  Future<bool> submit(Time service_time) {
    Promise<bool> p(loop_);
    auto fut = p.get_future();
    queue_.push_back(Item{service_time, std::move(p)});
    if (!busy_) serve_next();
    return fut;
  }

  std::size_t depth() const { return queue_.size() + (busy_ ? 1 : 0); }
  bool busy() const { return busy_; }
  std::uint64_t items_served() const { return served_; }
  // Total time the server has been occupied (utilization accounting).
  Time busy_time() const { return busy_time_; }

 private:
  struct Item {
    Time service_time;
    Promise<bool> done;
  };

  void serve_next() {
    if (queue_.empty()) return;
    busy_ = true;
    Item item = std::move(queue_.front());
    queue_.pop_front();
    busy_time_ += item.service_time;
    loop_.schedule_after(item.service_time,
                         [this, p = std::move(item.done)]() mutable {
                           ++served_;
                           p.set_value(true);
                           busy_ = false;
                           serve_next();
                         });
  }

  EventLoop& loop_;
  std::deque<Item> queue_;
  bool busy_ = false;
  std::uint64_t served_ = 0;
  Time busy_time_ = 0;
};

}  // namespace sim
