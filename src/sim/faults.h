// Fault-injection plane: a seeded, schedule-driven chaos harness for the
// deterministic event loop.
//
// Components with fault sites (the virtqueue, the backend command
// dispatcher, the SDN mapping cache) consult a FaultPlane through small
// pull-style hooks; window faults (controller outages) and explicit
// injections (force a QP into ERROR at time T) are pushed onto the loop by
// arm()/inject_*. Every decision derives from one seeded Rng consumed in
// event-loop order, so a (seed, FaultConfig) pair replays bit-for-bit:
// re-running a failed chaos seed reproduces the identical fault sequence.
// Each fired fault is appended to a replay log that the chaos harness
// prints (and CI uploads) on failure.
//
// A default-constructed FaultConfig injects nothing, and components treat
// a null FaultPlane* as "faults off" — the plane costs nothing unless a
// test, bench knob file, or CI job turns it on.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/event_loop.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace sim {

enum class FaultSite : std::uint8_t {
  kVqTransit,   // a virtqueue descriptor in guest->host transit
  kCmdExec,     // a backend command (or batch entry) execution
  kCacheEntry,  // a mapping-cache entry about to be served
  kSdnControl,  // controller reachability window
  kQpError,     // explicit QP ERROR injection
};

enum class FaultAction : std::uint8_t {
  kNone,
  kDrop,       // descriptor lost: no response ever arrives
  kDelay,      // descriptor delivered late
  kDuplicate,  // descriptor delivered twice
  kFail,       // command fails with a transient (retryable) error
  kExpire,     // cache entry evicted just before being served
  kOutageBegin,
  kOutageEnd,
  kForceError,  // QP forced into ERROR
};

const char* to_string(FaultSite s);
const char* to_string(FaultAction a);

struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  Time delay = 0;  // kDelay only

  bool none() const { return action == FaultAction::kNone; }
};

// One fired fault, as persisted in the replay log.
struct FaultRecord {
  Time at = 0;
  FaultSite site = FaultSite::kVqTransit;
  FaultAction action = FaultAction::kNone;
  std::uint64_t detail = 0;  // site-specific: command id, QPN, key hash
  Time delay = 0;
};

// [begin, end) in simulated time during which the SDN controller is
// unreachable from the hosts.
struct OutageWindow {
  Time begin = 0;
  Time end = 0;
};

struct FaultConfig {
  // Virtqueue descriptor faults (per transit).
  double vq_drop_p = 0.0;
  double vq_dup_p = 0.0;
  double vq_delay_p = 0.0;
  Time vq_delay_min = microseconds(10);
  Time vq_delay_max = microseconds(200);
  // Transient per-command failure (surfaces as rnic::Status::kUnavailable).
  double cmd_fail_p = 0.0;
  // Mapping-cache entry evicted right before it would have been served.
  double cache_expire_p = 0.0;
  // Controller unreachable during these windows.
  std::vector<OutageWindow> sdn_outages;

  bool any() const {
    return vq_drop_p > 0 || vq_dup_p > 0 || vq_delay_p > 0 ||
           cmd_fail_p > 0 || cache_expire_p > 0 || !sdn_outages.empty();
  }

  // Parses "key = value" knob lines ('#' starts a comment). Keys:
  //   vq_drop_p, vq_dup_p, vq_delay_p, cmd_fail_p, cache_expire_p
  //   vq_delay_min_us, vq_delay_max_us
  //   sdn_outage_ms = <begin>:<end>        (repeatable)
  // Returns false and fills *err on the first malformed line.
  static bool parse(std::string_view text, FaultConfig* out,
                    std::string* err);
};

class FaultPlane {
 public:
  FaultPlane(EventLoop& loop, FaultConfig config, std::uint64_t seed);
  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  // Schedules the window faults. `sdn_down(true/false)` fires at each
  // outage edge (typically wired to Controller::set_reachable). Call once,
  // before the loop runs past the first window edge.
  void arm(std::function<void(bool)> sdn_down);

  // --- pull-style decision points --------------------------------------
  // Virtqueue guest->host transit: drop / delay / duplicate.
  FaultDecision on_vq_transit(std::uint64_t cmd_id);
  // Backend command execution: true = fail with a transient error.
  bool fail_command(std::uint64_t detail);
  // Deterministic switch: while set, every command fails transiently. No
  // rng draw is consumed, so toggling it mid-run leaves the probabilistic
  // streams bit-identical — regression tests use it to target one verb.
  void set_force_cmd_failures(bool on) { force_cmd_failures_ = on; }
  bool force_cmd_failures() const { return force_cmd_failures_; }
  // Mapping cache: true = evict this entry instead of serving it.
  bool expire_cache_entry(std::uint64_t key_hash);

  // --- explicit injections ---------------------------------------------
  // Schedules `fire` at absolute time t and logs it as a forced QP ERROR.
  void inject_qp_error_at(Time t, std::uint64_t qpn,
                          std::function<void()> fire);

  std::uint64_t seed() const { return seed_; }
  const FaultConfig& config() const { return cfg_; }
  const std::vector<FaultRecord>& log() const { return log_; }
  std::uint64_t faults_fired() const { return log_.size(); }
  // Replay log, one record per line — stable across identical runs.
  std::string dump_log() const;

 private:
  void record(FaultSite site, FaultAction action, std::uint64_t detail,
              Time delay = 0);

  EventLoop& loop_;
  FaultConfig cfg_;
  std::uint64_t seed_;
  Rng rng_;
  std::vector<FaultRecord> log_;
  bool armed_ = false;
  bool force_cmd_failures_ = false;
};

}  // namespace sim
