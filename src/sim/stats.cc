#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace sim {

void Stats::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_valid_ = false;
}

void Stats::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
  sum_ = 0.0;
}

void Stats::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Stats::min() const {
  ensure_sorted();
  return sorted_.empty() ? std::numeric_limits<double>::quiet_NaN()
                         : sorted_.front();
}

double Stats::max() const {
  ensure_sorted();
  return sorted_.empty() ? std::numeric_limits<double>::quiet_NaN()
                         : sorted_.back();
}

double Stats::mean() const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  return sum_ / static_cast<double>(samples_.size());
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Stats::percentile(double p) const {
  ensure_sorted();
  if (sorted_.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (p <= 0.0) return sorted_.front();
  if (p >= 100.0) return sorted_.back();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

std::string Stats::summary() const {
  if (samples_.empty()) return "n=0";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f p50=%.3f p99=%.3f min=%.3f max=%.3f",
                count(), mean(), median(), percentile(99.0), min(), max());
  return buf;
}

}  // namespace sim
