// Cache-friendly ready queue for the event loop (DESIGN.md §13).
//
// Replaces std::priority_queue<Event> (a binary heap of ~72-byte elements
// whose std::function had to be *copied* out of a const top()). The queue
// orders arena-allocated EventNode pointers by (time, seq) — exactly the
// discipline the old heap enforced, so event traces are bit-identical —
// but organizes them as a two-level timer wheel:
//
//   ring      kBuckets buckets of kBucketWidth ns each (~1 ms horizon).
//             A push inside the horizon is an O(1) vector append keyed by
//             (t >> kBucketShift); the hot delays (cache hits 2 us, batch
//             windows 5 us, service budgets 1 us, RTTs 100 us) all land
//             here. A bucket becomes the *current* bucket lazily: its
//             events are heapified into `cur_` (24-byte entries, binary
//             heap) only when the cursor reaches it.
//   overflow  a (time, seq) binary heap for events beyond the horizon
//             (wave schedules, outage windows). When the ring drains, the
//             queue rebases: the horizon jumps to the earliest overflow
//             event and everything now inside it is redistributed into
//             buckets.
//
// Invariants that keep popping in strict (time, seq) order:
//   * every overflow event is >= base_ + horizon, so the ring always holds
//     the global minimum while it is nonempty;
//   * pushes at or before the current bucket's window join `cur_` directly
//     (schedule_at clamps t >= now, so nothing lands before the cursor).
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace sim {

struct EventNode {
  Time t = 0;
  std::uint64_t seq = 0;
  Callback cb;
  EventNode* pool_next = nullptr;  // NodePool free-list linkage
};

class ReadyQueue {
 public:
  static constexpr int kBucketShift = 12;  // 4096 ns per bucket
  static constexpr std::size_t kBuckets = 256;
  static constexpr Time kBucketWidth = Time{1} << kBucketShift;
  static constexpr Time kHorizon = kBucketWidth * static_cast<Time>(kBuckets);

  ReadyQueue() : ring_(kBuckets) {}
  ReadyQueue(const ReadyQueue&) = delete;
  ReadyQueue& operator=(const ReadyQueue&) = delete;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(EventNode* n) {
    ++size_;
    const Time t = n->t;
    if (t >= base_ + kHorizon) {
      heap_push(overflow_, Entry{t, n->seq, n});
      return;
    }
    if (t < base_) {
      // run_until() can advance now_ into a window the wheel has already
      // rebased past; such pushes are earlier than every parked event and
      // simply compete in the live heap.
      heap_push(cur_, Entry{t, n->seq, n});
      return;
    }
    const std::size_t idx =
        static_cast<std::size_t>((t - base_) >> kBucketShift);
    if (idx <= cursor_) {
      // The current bucket window (or, after run_until advanced now_ past
      // it, an already-drained window): compete in the live heap.
      heap_push(cur_, Entry{t, n->seq, n});
      return;
    }
    ring_[idx].push_back(n);
    ++ring_count_;
  }

  // Smallest (time, seq) event time, or kMaxTime when empty. Settles the
  // wheel (advances the cursor / rebases) but never reorders.
  Time next_time() {
    if (!settle()) return kMaxTime;
    return cur_.front().t;
  }

  // Pops the (time, seq)-minimum event. Precondition: !empty().
  EventNode* pop() {
    const bool ok = settle();
    assert(ok);
    (void)ok;
    EventNode* n = cur_.front().node;
    heap_pop(cur_);
    --size_;
    return n;
  }

  static constexpr Time kMaxTime =
      std::numeric_limits<Time>::max();  // sentinel for "queue empty"

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;
    EventNode* node;

    bool less_than(const Entry& o) const {
      if (t != o.t) return t < o.t;
      return seq < o.seq;
    }
  };

  // Ensures cur_ holds the global minimum. Returns false if empty.
  bool settle() {
    while (cur_.empty()) {
      if (ring_count_ > 0) {
        // Advance to the next nonempty bucket and make it current.
        std::size_t idx = cursor_ + 1;
        while (ring_[idx].empty()) ++idx;  // ring_count_ > 0 guarantees hit
        cursor_ = idx;
        adopt_bucket(idx);
        continue;
      }
      if (overflow_.empty()) return false;
      rebase();
    }
    return true;
  }

  void adopt_bucket(std::size_t idx) {
    std::vector<EventNode*>& b = ring_[idx];
    ring_count_ -= b.size();
    cur_.reserve(b.size());
    for (EventNode* n : b) cur_.push_back(Entry{n->t, n->seq, n});
    b.clear();
    // Bottom-up heapify: O(n) vs n heap pushes.
    for (std::size_t i = cur_.size() / 2; i-- > 0;) sift_down(cur_, i);
  }

  // Ring fully drained: jump the horizon to the earliest overflow event
  // and pull everything inside the new horizon back into buckets.
  void rebase() {
    assert(ring_count_ == 0 && cur_.empty() && !overflow_.empty());
    const Time min_t = overflow_.front().t;
    base_ = (min_t >> kBucketShift) << kBucketShift;
    cursor_ = 0;
    const Time limit = base_ + kHorizon;
    while (!overflow_.empty() && overflow_.front().t < limit) {
      Entry e = overflow_.front();
      heap_pop(overflow_);
      const std::size_t idx =
          static_cast<std::size_t>((e.t - base_) >> kBucketShift);
      if (idx == 0) {
        cur_.push_back(e);  // heapified below
      } else {
        ring_[idx].push_back(e.node);
        ++ring_count_;
      }
    }
    for (std::size_t i = cur_.size() / 2; i-- > 0;) sift_down(cur_, i);
  }

  // ---- small binary-heap helpers over vectors of Entry ----
  static void sift_up(std::vector<Entry>& h, std::size_t i) {
    Entry e = h[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!e.less_than(h[parent])) break;
      h[i] = h[parent];
      i = parent;
    }
    h[i] = e;
  }
  static void sift_down(std::vector<Entry>& h, std::size_t i) {
    const std::size_t n = h.size();
    Entry e = h[i];
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && h[child + 1].less_than(h[child])) ++child;
      if (!h[child].less_than(e)) break;
      h[i] = h[child];
      i = child;
    }
    h[i] = e;
  }
  static void heap_push(std::vector<Entry>& h, Entry e) {
    h.push_back(e);
    sift_up(h, h.size() - 1);
  }
  static void heap_pop(std::vector<Entry>& h) {
    h.front() = h.back();
    h.pop_back();
    if (!h.empty()) sift_down(h, 0);
  }

  std::vector<std::vector<EventNode*>> ring_;
  std::vector<Entry> cur_;       // current bucket, (t, seq) min-heap
  std::vector<Entry> overflow_;  // beyond the horizon, (t, seq) min-heap
  Time base_ = 0;                // ring start (bucket-aligned)
  std::size_t cursor_ = 0;       // current bucket index
  std::size_t ring_count_ = 0;   // events parked in ring_ (excluding cur_)
  std::size_t size_ = 0;
};

}  // namespace sim
