// Minimal leveled logger stamped with simulated time.
//
// Off (kWarn) by default so benchmark output stays clean; tests and examples
// can raise the level to trace protocol behaviour.
#pragma once

#include <cstdio>
#include <string>

#include "sim/time.h"

namespace sim {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

// Logs "[ 12.500 us] component: message" to stderr if level is enabled.
void log(LogLevel level, Time now, const char* component,
         const std::string& message);

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

}  // namespace sim
