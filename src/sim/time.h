// Simulated time: signed 64-bit nanoseconds since simulation start.
//
// All latency constants in the code base are expressed through the literal
// helpers below so that units are always explicit at the point of use.
#pragma once

#include <cstdint>
#include <string>

namespace sim {

using Time = std::int64_t;  // nanoseconds

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

inline constexpr Time nanoseconds(double n) { return static_cast<Time>(n); }
inline constexpr Time microseconds(double u) {
  return static_cast<Time>(u * kMicrosecond);
}
inline constexpr Time milliseconds(double m) {
  return static_cast<Time>(m * kMillisecond);
}
inline constexpr Time seconds(double s) { return static_cast<Time>(s * kSecond); }

inline constexpr double to_us(Time t) {
  return static_cast<double>(t) / kMicrosecond;
}
inline constexpr double to_ms(Time t) {
  return static_cast<double>(t) / kMillisecond;
}
inline constexpr double to_s(Time t) { return static_cast<double>(t) / kSecond; }

// Human-readable rendering with an auto-selected unit ("12.5 us", "3.1 ms").
std::string format_time(Time t);

namespace literals {
constexpr Time operator""_ns(unsigned long long v) {
  return static_cast<Time>(v);
}
constexpr Time operator""_us(unsigned long long v) {
  return static_cast<Time>(v) * kMicrosecond;
}
constexpr Time operator""_ms(unsigned long long v) {
  return static_cast<Time>(v) * kMillisecond;
}
constexpr Time operator""_s(unsigned long long v) {
  return static_cast<Time>(v) * kSecond;
}
}  // namespace literals

}  // namespace sim
