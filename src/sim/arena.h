// Arena allocation for the simulator hot path (DESIGN.md §13).
//
// Three building blocks, all deterministic (allocation is never observable
// in the event stream — addresses are not hashed, compared, or iterated):
//
//   Arena      chunked bump allocator: 64 KiB slabs, pointer-bump allocate,
//              no per-object free. Backs the fixed-size pools below and any
//              run-scoped scratch that would otherwise churn malloc.
//   NodePool   free-list recycler for one node type on top of an Arena.
//              The event loop allocates every scheduled event from one of
//              these: steady state is pop-push on a singly linked free
//              list, zero malloc traffic.
//   frame_alloc/frame_free
//              size-classed pool for C++20 coroutine frames (sim::Task
//              promises route operator new/delete here). Free lists are
//              thread-local (partition loops run on worker threads); the
//              backing slabs live in a process-wide registry so a frame
//              allocated by one thread may be freed by another and the
//              memory stays valid until process exit.
//
// Under ASan/UBSan builds every pool degrades to plain new/delete so the
// sanitizers keep seeing real object lifetimes (a recycled frame would
// otherwise mask use-after-free). The chaos/sanitizer CI jobs rely on this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "sim/ownership.h"

#if defined(__SANITIZE_ADDRESS__)
#define MASQ_ARENA_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MASQ_ARENA_PASSTHROUGH 1
#endif
#endif

namespace sim {

// Chunked bump allocator. Not thread-safe; one Arena per owner.
class Arena {
 public:
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t size, std::size_t align) {
    std::size_t offset = (offset_ + align - 1) & ~(align - 1);
    if (chunks_.empty() || offset + size > chunk_size_) {
      grow(size + align);
      offset = (offset_ + align - 1) & ~(align - 1);
    }
    void* p = chunks_.back().get() + offset;
    offset_ = offset + size;
    return p;
  }

  template <typename T, typename... Args>
  T* make(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);  // masq-lint: allow(naked-new) placement-new into arena storage
  }

  std::size_t bytes_reserved() const {
    return chunks_.size() * kChunkBytes;  // approximation; big allocs vary
  }

 private:
  void grow(std::size_t at_least) {
    chunk_size_ = at_least > kChunkBytes ? at_least : kChunkBytes;
    chunks_.push_back(std::make_unique<unsigned char[]>(chunk_size_));
    offset_ = 0;
  }

  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  std::size_t chunk_size_ = 0;
  std::size_t offset_ = 0;
};

// Fixed-type free-list pool. acquire() hands out a *constructed* T whose
// reusable state the caller resets; release() just pushes it back. All
// nodes are destroyed when the pool dies, so callers must not outlive it.
template <typename T>
class NodePool {
 public:
  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;
  ~NodePool() {
#if !defined(MASQ_ARENA_PASSTHROUGH)
    for (T* n : all_) n->~T();
#endif
  }

  T* acquire() {
#if defined(MASQ_ARENA_PASSTHROUGH)
    return new T();  // masq-lint: allow(naked-new) sanitizer passthrough, released via delete below
#else
    if (free_ != nullptr) {
      T* n = free_;
      free_ = *next_of(n);
      return n;
    }
    T* n = arena_.template make<T>();
    all_.push_back(n);
    return n;
#endif
  }

  void release(T* n) {
#if defined(MASQ_ARENA_PASSTHROUGH)
    delete n;
#else
    *next_of(n) = free_;
    free_ = n;
#endif
  }

  std::size_t bytes_reserved() const { return arena_.bytes_reserved(); }

 private:
  // Freed nodes chain through their `pool_next` member (T must provide it).
  static T** next_of(T* n) { return &n->pool_next; }

  Arena arena_;
  T* free_ = nullptr;
  std::vector<T*> all_;
};

// ---------------------------------------------------------------------------
// Coroutine-frame pool.
// ---------------------------------------------------------------------------

namespace detail {

inline constexpr std::size_t kFrameClassShift = 6;  // 64-byte classes
inline constexpr std::size_t kFrameClasses = 32;    // up to 2 KiB pooled

// Slabs are owned process-wide (freed at static destruction, so leak
// checkers stay clean) because frames migrate: a frame allocated while a
// coroutine is created on the coordinator thread is destroyed by whichever
// worker runs its partition last.
struct FrameSlabRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<unsigned char[]>> slabs;

  unsigned char* grab_slab(std::size_t bytes) {
    auto slab = std::make_unique<unsigned char[]>(bytes);
    unsigned char* p = slab.get();
    std::lock_guard<std::mutex> lock(mu);
    slabs.push_back(std::move(slab));
    return p;
  }
};

inline FrameSlabRegistry& frame_slab_registry() {
  MASQ_SHARED_STATE("process-wide slab keep-alive; every access takes its internal mutex, and freed frames only move through thread_local free lists")
  static FrameSlabRegistry registry;
  return registry;
}

struct FrameFreeLists {
  void* head[kFrameClasses] = {};
};

inline FrameFreeLists& frame_free_lists() {
  thread_local FrameFreeLists lists;
  return lists;
}

inline void* frame_alloc(std::size_t size) {
#if defined(MASQ_ARENA_PASSTHROUGH)
  return ::operator new(size);
#else
  const std::size_t cls = (size - 1) >> kFrameClassShift;
  if (cls >= kFrameClasses) return ::operator new(size);
  FrameFreeLists& lists = frame_free_lists();
  if (void* p = lists.head[cls]) {
    lists.head[cls] = *static_cast<void**>(p);
    return p;
  }
  const std::size_t block = (cls + 1) << kFrameClassShift;
  const std::size_t count = Arena::kChunkBytes / block;
  unsigned char* slab =
      frame_slab_registry().grab_slab(block * count);
  // First block satisfies this allocation; the rest seed the free list.
  for (std::size_t i = 1; i < count; ++i) {
    void* b = slab + i * block;
    *static_cast<void**>(b) = lists.head[cls];
    lists.head[cls] = b;
  }
  return slab;
#endif
}

inline void frame_free(void* p, std::size_t size) {
#if defined(MASQ_ARENA_PASSTHROUGH)
  ::operator delete(p);
#else
  const std::size_t cls = (size - 1) >> kFrameClassShift;
  if (cls >= kFrameClasses) {
    ::operator delete(p);
    return;
  }
  FrameFreeLists& lists = frame_free_lists();
  *static_cast<void**>(p) = lists.head[cls];
  lists.head[cls] = p;
#endif
}

}  // namespace detail

}  // namespace sim
