#include "sim/time.h"

#include <cmath>
#include <cstdio>

namespace sim {

std::string format_time(Time t) {
  char buf[64];
  const double abs = std::fabs(static_cast<double>(t));
  if (abs >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3f s", to_s(t));
  } else if (abs >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", to_ms(t));
  } else if (abs >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.3f us", to_us(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(t));
  }
  return buf;
}

}  // namespace sim
