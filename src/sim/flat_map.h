// Deterministic open-addressing flat map / set (DESIGN.md §13).
//
// Drop-in replacement for the simulator's hot std::unordered_map /
// std::unordered_set uses. Two properties matter here:
//
//   * Layout: one dense std::vector<std::pair<K,V>> in insertion order plus
//     a power-of-two open-addressing index of 4-byte slots. find() is a
//     linear probe over the index then one dense access — no per-node
//     allocation, no pointer chasing through buckets.
//   * Determinism: iteration walks the dense vector, so the order is the
//     insertion order — a pure function of the event sequence, identical
//     across runs, platforms, and standard libraries. std::unordered_map
//     iteration order depends on bucket counts and hash seeds, which is why
//     masq_lint.py bans iterating it; FlatMap is exempt from that rule and
//     from sort-before-iterate gymnastics at call sites that only need *a*
//     stable order rather than key order.
//
// Erase marks the dense slot dead (tombstone) and compacts — preserving
// the relative order of survivors — once half the slots are dead, so mixed
// insert/erase workloads stay O(1) amortized and iteration stays O(live).
// Key-*ordered* containers (PSN retransmit queues, buddy free-lists) are
// not candidates for this type; they keep std::map with a lint allow-tag.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace sim {

namespace flat_detail {

// Final avalanche of splitmix64. std::hash for integers is the identity on
// libstdc++; mixing keeps clustered keys (sequential QPNs, VM ids) from
// clustering in the probe sequence.
inline std::size_t mix_hash(std::size_t h) {
  std::uint64_t x = static_cast<std::uint64_t>(h);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x);
}

inline constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
inline constexpr std::uint32_t kTomb = 0xFFFFFFFEu;

}  // namespace flat_detail

template <typename K, typename V, typename Hash = std::hash<K>>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;

  // Iterator over live entries in insertion order.
  template <bool Const>
  class Iter {
   public:
    using Owner = std::conditional_t<Const, const FlatMap, FlatMap>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;

    Iter() = default;
    Iter(Owner* m, std::size_t i) : m_(m), i_(i) { skip_dead(); }
    // const_iterator from iterator
    template <bool C = Const, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& o) : m_(o.m_), i_(o.i_) {}  // NOLINT

    Ref operator*() const { return m_->entries_[i_]; }
    Ptr operator->() const { return &m_->entries_[i_]; }
    Iter& operator++() {
      ++i_;
      skip_dead();
      return *this;
    }
    Iter operator++(int) {
      Iter t = *this;
      ++*this;
      return t;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.i_ != b.i_;
    }

   private:
    friend class FlatMap;
    friend class Iter<true>;
    void skip_dead() {
      while (m_ != nullptr && i_ < m_->entries_.size() && !m_->alive_[i_]) {
        ++i_;
      }
    }
    Owner* m_ = nullptr;
    std::size_t i_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, entries_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, entries_.size()); }

  void clear() {
    entries_.clear();
    alive_.clear();
    index_.clear();
    mask_ = 0;
    size_ = 0;
    dead_ = 0;
  }

  iterator find(const K& k) {
    const std::size_t d = find_dense(k);
    return iterator(this, d == kNpos ? entries_.size() : d);
  }
  const_iterator find(const K& k) const {
    const std::size_t d = find_dense(k);
    return const_iterator(this, d == kNpos ? entries_.size() : d);
  }
  std::size_t count(const K& k) const { return find_dense(k) == kNpos ? 0 : 1; }
  bool contains(const K& k) const { return find_dense(k) != kNpos; }

  V& operator[](const K& k) {
    const std::size_t d = find_dense(k);
    if (d != kNpos) return entries_[d].second;
    return emplace_new(k, V{})->second;
  }

  V& at(const K& k) {
    const std::size_t d = find_dense(k);
    assert(d != kNpos && "FlatMap::at: missing key");
    return entries_[d].second;
  }
  const V& at(const K& k) const {
    const std::size_t d = find_dense(k);
    assert(d != kNpos && "FlatMap::at: missing key");
    return entries_[d].second;
  }

  template <typename... Args>
  std::pair<iterator, bool> emplace(const K& k, Args&&... args) {
    const std::size_t d = find_dense(k);
    if (d != kNpos) return {iterator(this, d), false};
    return {emplace_new(k, V(std::forward<Args>(args)...)), true};
  }
  std::pair<iterator, bool> insert(value_type kv) {
    const std::size_t d = find_dense(kv.first);
    if (d != kNpos) return {iterator(this, d), false};
    return {emplace_new(std::move(kv.first), std::move(kv.second)), true};
  }
  std::pair<iterator, bool> insert_or_assign(const K& k, V v) {
    const std::size_t d = find_dense(k);
    if (d != kNpos) {
      entries_[d].second = std::move(v);
      return {iterator(this, d), false};
    }
    return {emplace_new(k, std::move(v)), true};
  }

  std::size_t erase(const K& k) {
    const std::size_t slot = find_slot(k);
    if (slot == kNpos) return 0;
    erase_slot(slot, /*allow_compact=*/true);
    return 1;
  }
  // Iterator erase never compacts (that would invalidate positions), so
  // `it = m.erase(it)` loops are safe; deferred compaction happens on the
  // next insert or key-erase.
  iterator erase(iterator it) {
    assert(it.m_ == this && it.i_ < entries_.size() && alive_[it.i_]);
    const std::size_t slot = find_slot(entries_[it.i_].first);
    assert(slot != kNpos);
    erase_slot(slot, /*allow_compact=*/false);
    return iterator(this, it.i_ + 1);
  }

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  std::size_t hash_of(const K& k) const {
    return flat_detail::mix_hash(Hash{}(k));
  }

  // Dense position of k, or kNpos.
  std::size_t find_dense(const K& k) const {
    if (index_.empty()) return kNpos;
    std::size_t pos = hash_of(k) & mask_;
    while (true) {
      const std::uint32_t d = index_[pos];
      if (d == flat_detail::kEmpty) return kNpos;
      if (d != flat_detail::kTomb && entries_[d].first == k) return d;
      pos = (pos + 1) & mask_;
    }
  }

  // Index-table slot holding k, or kNpos.
  std::size_t find_slot(const K& k) const {
    if (index_.empty()) return kNpos;
    std::size_t pos = hash_of(k) & mask_;
    while (true) {
      const std::uint32_t d = index_[pos];
      if (d == flat_detail::kEmpty) return kNpos;
      if (d != flat_detail::kTomb && entries_[d].first == k) return pos;
      pos = (pos + 1) & mask_;
    }
  }

  iterator emplace_new(K k, V v) {
    if (entries_.size() + 1 > (index_.size() * 7) / 8 || index_.empty()) {
      grow();
    }
    const std::size_t d = entries_.size();
    entries_.emplace_back(std::move(k), std::move(v));
    alive_.push_back(1);
    place(hash_of(entries_.back().first), static_cast<std::uint32_t>(d));
    ++size_;
    return iterator(this, d);
  }

  void place(std::size_t h, std::uint32_t dense) {
    std::size_t pos = h & mask_;
    while (index_[pos] != flat_detail::kEmpty &&
           index_[pos] != flat_detail::kTomb) {
      pos = (pos + 1) & mask_;
    }
    index_[pos] = dense;
  }

  void erase_slot(std::size_t slot, bool allow_compact) {
    const std::uint32_t d = index_[slot];
    index_[slot] = flat_detail::kTomb;
    alive_[d] = 0;
    entries_[d] = value_type{};  // release key/value resources now
    --size_;
    ++dead_;
    if (allow_compact && dead_ > entries_.size() / 2) compact();
  }

  // Squeeze out dead slots (preserving survivor order) and rebuild the
  // index. Also used for growth.
  void compact() { rebuild(index_.empty() ? 16 : index_.size()); }

  void grow() { rebuild(index_.empty() ? 16 : index_.size() * 2); }

  void rebuild(std::size_t new_cap) {
    while (new_cap < (entries_.size() - dead_ + 1) * 2) new_cap *= 2;
    if (dead_ > 0) {
      std::size_t w = 0;
      for (std::size_t r = 0; r < entries_.size(); ++r) {
        if (!alive_[r]) continue;
        if (w != r) entries_[w] = std::move(entries_[r]);
        ++w;
      }
      entries_.resize(w);
      alive_.assign(w, 1);
      dead_ = 0;
    }
    index_.assign(new_cap, flat_detail::kEmpty);
    mask_ = new_cap - 1;
    for (std::size_t d = 0; d < entries_.size(); ++d) {
      place(hash_of(entries_[d].first), static_cast<std::uint32_t>(d));
    }
  }

  std::vector<value_type> entries_;   // insertion order; may hold dead slots
  std::vector<std::uint8_t> alive_;   // parallel to entries_
  std::vector<std::uint32_t> index_;  // open addressing: dense idx / sentinel
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t dead_ = 0;
};

// Set counterpart: same index machinery over a dense key vector.
template <typename K, typename Hash = std::hash<K>>
class FlatSet {
 public:
  using value_type = K;

  template <bool Const>
  class Iter {
   public:
    using Owner = const FlatSet;  // set elements are immutable either way

    Iter() = default;
    Iter(Owner* s, std::size_t i) : s_(s), i_(i) { skip_dead(); }
    template <bool C = Const, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& o) : s_(o.s_), i_(o.i_) {}  // NOLINT

    const K& operator*() const { return s_->keys_[i_]; }
    const K* operator->() const { return &s_->keys_[i_]; }
    Iter& operator++() {
      ++i_;
      skip_dead();
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.i_ != b.i_;
    }

   private:
    friend class FlatSet;
    friend class Iter<true>;
    void skip_dead() {
      while (s_ != nullptr && i_ < s_->keys_.size() && !s_->alive_[i_]) ++i_;
    }
    Owner* s_ = nullptr;
    std::size_t i_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatSet() = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, keys_.size()); }

  void clear() {
    keys_.clear();
    alive_.clear();
    index_.clear();
    mask_ = 0;
    size_ = 0;
    dead_ = 0;
  }

  std::size_t count(const K& k) const { return find_dense(k) == kNpos ? 0 : 1; }
  bool contains(const K& k) const { return find_dense(k) != kNpos; }
  const_iterator find(const K& k) const {
    const std::size_t d = find_dense(k);
    return const_iterator(this, d == kNpos ? keys_.size() : d);
  }

  std::pair<const_iterator, bool> insert(K k) {
    const std::size_t d = find_dense(k);
    if (d != kNpos) return {const_iterator(this, d), false};
    if (keys_.size() + 1 > (index_.size() * 7) / 8 || index_.empty()) grow();
    const std::size_t nd = keys_.size();
    keys_.push_back(std::move(k));
    alive_.push_back(1);
    place(hash_of(keys_.back()), static_cast<std::uint32_t>(nd));
    ++size_;
    return {const_iterator(this, nd), true};
  }

  std::size_t erase(const K& k) {
    const std::size_t slot = find_slot(k);
    if (slot == kNpos) return 0;
    const std::uint32_t d = index_[slot];
    index_[slot] = flat_detail::kTomb;
    alive_[d] = 0;
    keys_[d] = K{};
    --size_;
    ++dead_;
    if (dead_ > keys_.size() / 2) rebuild(index_.size());
    return 1;
  }

 private:
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  std::size_t hash_of(const K& k) const {
    return flat_detail::mix_hash(Hash{}(k));
  }

  std::size_t find_dense(const K& k) const {
    if (index_.empty()) return kNpos;
    std::size_t pos = hash_of(k) & mask_;
    while (true) {
      const std::uint32_t d = index_[pos];
      if (d == flat_detail::kEmpty) return kNpos;
      if (d != flat_detail::kTomb && keys_[d] == k) return d;
      pos = (pos + 1) & mask_;
    }
  }
  std::size_t find_slot(const K& k) const {
    if (index_.empty()) return kNpos;
    std::size_t pos = hash_of(k) & mask_;
    while (true) {
      const std::uint32_t d = index_[pos];
      if (d == flat_detail::kEmpty) return kNpos;
      if (d != flat_detail::kTomb && keys_[d] == k) return pos;
      pos = (pos + 1) & mask_;
    }
  }

  void place(std::size_t h, std::uint32_t dense) {
    std::size_t pos = h & mask_;
    while (index_[pos] != flat_detail::kEmpty &&
           index_[pos] != flat_detail::kTomb) {
      pos = (pos + 1) & mask_;
    }
    index_[pos] = dense;
  }

  void grow() { rebuild(index_.empty() ? 16 : index_.size() * 2); }

  void rebuild(std::size_t new_cap) {
    while (new_cap < (keys_.size() - dead_ + 1) * 2) new_cap *= 2;
    if (dead_ > 0) {
      std::size_t w = 0;
      for (std::size_t r = 0; r < keys_.size(); ++r) {
        if (!alive_[r]) continue;
        if (w != r) keys_[w] = std::move(keys_[r]);
        ++w;
      }
      keys_.resize(w);
      alive_.assign(w, 1);
      dead_ = 0;
    }
    index_.assign(new_cap, flat_detail::kEmpty);
    mask_ = new_cap - 1;
    for (std::size_t d = 0; d < keys_.size(); ++d) {
      place(hash_of(keys_[d]), static_cast<std::uint32_t>(d));
    }
  }

  std::vector<K> keys_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint32_t> index_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t dead_ = 0;
};

}  // namespace sim
