#include "sim/rng.h"

#include <cmath>

namespace sim {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_exponential(double mean) {
  double u = next_double();
  if (u >= 1.0) u = 0.999999999999;
  return -mean * std::log1p(-u);
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace sim
