#include "sim/log.h"

#include "sim/ownership.h"

namespace sim {

namespace {
MASQ_SHARED_STATE("set once by tool main() before any worker thread exists; plain reads thereafter")
LogLevel g_level = LogLevel::kWarn;
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void log(LogLevel level, Time now, const char* component,
         const std::string& message) {
  if (!log_enabled(level)) return;
  std::fprintf(stderr, "[%12s] %-5s %s: %s\n", format_time(now).c_str(),
               level_name(level), component, message.c_str());
}

}  // namespace sim
