// Deterministic discrete-event loop.
//
// The loop owns simulated time. Events fire in (time, insertion-order); ties
// are broken FIFO so runs are bit-for-bit reproducible. Root coroutines
// (sim::Task<void>) may be attached with spawn(); their lifetime is owned by
// the loop and exceptions escaping a root task are rethrown from run().
//
// Hot-path machinery (DESIGN.md §13): events are arena-allocated nodes
// (sim::NodePool) ordered by a bucketed timer wheel (sim::ReadyQueue), and
// callbacks are small-buffer-optimized sim::Callback — no malloc and no
// std::function copy per scheduled event. The (time, seq) discipline, and
// therefore every event trace and golden number, is unchanged from the
// priority-queue implementation this replaced.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/arena.h"
#include "sim/callback.h"
#include "sim/ownership.h"
#include "sim/ready_queue.h"
#include "sim/time.h"

namespace sim {

template <typename T>
class Task;

class EventLoop {
 public:
  using Callback = sim::Callback;

  EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;
  ~EventLoop();

  Time now() const { return now_; }

  // Schedules `cb` at absolute time `t` (clamped to now()).
  void schedule_at(Time t, Callback cb);
  // Schedules `cb` `delay` nanoseconds from now (negative delays clamp to 0).
  void schedule_after(Time delay, Callback cb);

  // Runs until the event queue drains. Returns the final simulated time.
  Time run();

  // Runs all events with timestamp <= deadline, then sets now() = deadline.
  void run_until(Time deadline);

  // Runs all events with timestamp strictly < end, then sets now() = end.
  // The partition engine's window primitive: events at exactly `end` belong
  // to the next window (or to a barrier), so cross-partition deliveries at
  // `end` scheduled after this returns still land in the future.
  void run_before(Time end);

  // Timestamp of the next pending event, or ReadyQueue::kMaxTime if none.
  Time next_event_time() { return queue_.next_time(); }

  // Attaches a root coroutine. It starts running at the current time (the
  // first resume is scheduled as an event, not executed inline).
  void spawn(Task<void> task);

  // Called by the final awaiter of a root task (see detail::PromiseBase):
  // records the frame for the next reap cycle so reaping is O(#finished),
  // not a scan of every live root.
  void note_root_finished(std::coroutine_handle<> h) {
    finished_roots_.push_back(h.address());
  }

  // Number of events executed so far (useful for tests / budget checks).
  std::uint64_t events_executed() const { return executed_; }

  // Timestamp of the last event actually executed. Unlike now(), this is
  // not advanced by run_until()/run_before() deadlines, so a partitioned
  // run can report when the simulation *ended* rather than where the last
  // window boundary happened to fall.
  Time last_event_time() const { return last_event_time_; }

  bool empty() const { return queue_.empty(); }

  // ------------------------------------------------------------------
  // Invariant auditing (src/check). The hook fires between events, every
  // `every_n_events` executed events. Cost when unset: one branch per
  // event. An exception thrown by the hook propagates out of run().
  // ------------------------------------------------------------------
  void set_audit_hook(std::uint64_t every_n_events, Callback hook) {
    audit_every_ = every_n_events == 0 ? 1 : every_n_events;
    audit_hook_ = std::move(hook);
  }
  void clear_audit_hook() { audit_hook_ = nullptr; }

  // ------------------------------------------------------------------
  // Event-trace hash (determinism auditing). When enabled, every executed
  // event mixes (time, seq) into an FNV-1a accumulator, and instrumented
  // components mix in content markers via trace(). Two runs of the same
  // (config, seed) must produce bit-identical hashes; a divergence means
  // something fed nondeterministic state (e.g. unordered-container
  // iteration order) into the event stream. Cost when disabled: one
  // branch per call.
  // ------------------------------------------------------------------
  // ------------------------------------------------------------------
  // Ownership auditing (src/check). When a probe is installed it observes
  // every loop mutation — each schedule_at() and each executed event — so
  // the partition-ownership auditor can verify the calling thread owns
  // this loop's partition window. Probes observe only; they never
  // schedule. Cost when unset: one branch per mutation.
  // ------------------------------------------------------------------
  void set_access_probe(LoopAccessProbe* probe) { probe_ = probe; }

  void enable_trace() { trace_enabled_ = true; }
  bool trace_enabled() const { return trace_enabled_; }
  void trace(std::uint64_t v) {
    if (trace_enabled_) mix_trace(v);
  }
  std::uint64_t trace_hash() const { return trace_hash_; }

 private:
  // Pops and runs the next event. Precondition: !queue_.empty().
  void step();
  void reap_finished_tasks();

  void mix_trace(std::uint64_t v) {
    // FNV-1a over the 8 value bytes, folded in one multiply per word.
    trace_hash_ = (trace_hash_ ^ v) * 0x100000001b3ull;
  }

  ReadyQueue queue_;
  NodePool<EventNode> pool_;
  Time now_ = 0;
  Time last_event_time_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;

  std::uint64_t audit_every_ = 0;
  Callback audit_hook_;
  LoopAccessProbe* probe_ = nullptr;

  bool trace_enabled_ = false;
  std::uint64_t trace_hash_ = 0xcbf29ce484222325ull;  // FNV offset basis

  // Live root-coroutine frames, as raw handle addresses (the promise type
  // is only nameable in the .cc, which includes task.h). Each frame's
  // promise stores its index here; reap swap-erases and fixes indices up.
  std::vector<void*> roots_;
  std::vector<void*> finished_roots_;
};

}  // namespace sim
