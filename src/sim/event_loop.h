// Deterministic discrete-event loop.
//
// The loop owns simulated time. Events fire in (time, insertion-order); ties
// are broken FIFO so runs are bit-for-bit reproducible. Root coroutines
// (sim::Task<void>) may be attached with spawn(); their lifetime is owned by
// the loop and exceptions escaping a root task are rethrown from run().
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace sim {

template <typename T>
class Task;

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;
  ~EventLoop();

  Time now() const { return now_; }

  // Schedules `cb` at absolute time `t` (clamped to now()).
  void schedule_at(Time t, Callback cb);
  // Schedules `cb` `delay` nanoseconds from now (negative delays clamp to 0).
  void schedule_after(Time delay, Callback cb);

  // Runs until the event queue drains. Returns the final simulated time.
  Time run();

  // Runs all events with timestamp <= deadline, then sets now() = deadline.
  void run_until(Time deadline);

  // Attaches a root coroutine. It starts running at the current time (the
  // first resume is scheduled as an event, not executed inline).
  void spawn(Task<void> task);

  // Number of events executed so far (useful for tests / budget checks).
  std::uint64_t events_executed() const { return executed_; }

  bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Callback cb;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  // Pops and runs the next event. Precondition: !queue_.empty().
  void step();
  void reap_finished_tasks();

  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;

  struct RootTask;
  std::vector<RootTask*> roots_;
};

}  // namespace sim
