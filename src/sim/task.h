// C++20 coroutine tasks for the discrete-event loop.
//
//   sim::Task<int> child(sim::EventLoop& loop) {
//     co_await loop.delay(5 * sim::kMicrosecond);
//     co_return 42;
//   }
//   sim::Task<void> parent(sim::EventLoop& loop) {
//     int v = co_await child(loop);
//     ...
//   }
//   loop.spawn(parent(loop));
//   loop.run();
//
// Tasks are lazy: nothing runs until the task is awaited or spawned on the
// loop. Awaiting uses symmetric transfer, so deep chains don't grow the
// stack. Exceptions propagate to the awaiter; exceptions escaping a root
// task are rethrown from EventLoop::run().
//
// Future<T>/Promise<T> provide one-shot rendezvous between tasks and
// callback-style code (e.g. hardware completion events).
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "sim/time.h"

namespace sim {

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;

  // Set only on root tasks (EventLoop::spawn). The loop used to discover
  // finished roots by scanning every live root each reap cycle — O(live)
  // per reap, quadratic over a storm that spawns one root per connection.
  // Instead the final awaiter notifies the owner, so reaping touches only
  // tasks that actually completed. root_index is the task's slot in the
  // loop's root table (kept current under swap-erase).
  EventLoop* root_owner = nullptr;
  std::size_t root_index = 0;

  // Coroutine frames come from the size-classed pool in sim/arena.h: the
  // simulator allocates a frame per in-flight operation (connect, query,
  // flush) and the pool turns that from a malloc/free pair into a
  // thread-local free-list pop/push. Sized delete is guaranteed here
  // because the compiler always calls these operators with the frame size.
  static void* operator new(std::size_t n) { return frame_alloc(n); }
  static void operator delete(void* p, std::size_t n) { frame_free(p, n); }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      PromiseBase& p = h.promise();
      if (p.root_owner != nullptr) p.root_owner->note_root_finished(h);
      auto cont = p.continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    std::exception_ptr error;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
    void unhandled_exception() { error = std::current_exception(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  // Awaiting a task starts it (symmetric transfer) and resumes the awaiter
  // when the task completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      T await_resume() {
        auto& p = handle.promise();
        if (p.error) std::rethrow_exception(p.error);
        assert(p.value.has_value());
        return std::move(*p.value);
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, {});
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    std::exception_ptr error;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      void await_resume() {
        if (handle.promise().error) {
          std::rethrow_exception(handle.promise().error);
        }
      }
    };
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() {
    return std::exchange(handle_, {});
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

// ---------------------------------------------------------------------------
// Delay: co_await delay(loop, d) resumes the coroutine d nanoseconds later.
// ---------------------------------------------------------------------------

struct DelayAwaiter {
  EventLoop& loop;
  Time delay;
  bool await_ready() const noexcept { return delay <= 0; }
  void await_suspend(std::coroutine_handle<> h) {
    loop.schedule_after(delay, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

inline DelayAwaiter delay(EventLoop& loop, Time d) { return {loop, d}; }

// ---------------------------------------------------------------------------
// Future / Promise: one-shot value channel. Multiple awaiters are allowed;
// all are resumed (in FIFO order) when the value arrives. Resumption is
// scheduled as a loop event, never inline, to keep re-entrancy out of
// set_value() callers.
// ---------------------------------------------------------------------------

namespace detail {

template <typename T>
struct SharedState {
  EventLoop* loop;
  std::optional<T> value;
  std::exception_ptr error;
  std::vector<std::coroutine_handle<>> waiters;

  bool ready() const { return value.has_value() || error != nullptr; }
  void wake_all() {
    for (auto h : waiters) {
      loop->schedule_after(0, [h] { h.resume(); });
    }
    waiters.clear();
  }
};

}  // namespace detail

template <typename T>
class Future;

template <typename T>
class Promise {
 public:
  explicit Promise(EventLoop& loop)
      : state_(std::make_shared<detail::SharedState<T>>()) {
    state_->loop = &loop;
  }

  Future<T> get_future() const;

  void set_value(T v) {
    assert(!state_->ready() && "promise already satisfied");
    state_->value.emplace(std::move(v));
    state_->wake_all();
  }
  void set_exception(std::exception_ptr e) {
    assert(!state_->ready() && "promise already satisfied");
    state_->error = e;
    state_->wake_all();
  }
  bool satisfied() const { return state_->ready(); }

 private:
  std::shared_ptr<detail::SharedState<T>> state_;
};

template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<detail::SharedState<T>> s)
      : state_(std::move(s)) {}

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ && state_->ready(); }

  auto operator co_await() const noexcept {
    struct Awaiter {
      std::shared_ptr<detail::SharedState<T>> state;
      bool await_ready() const noexcept { return state->ready(); }
      void await_suspend(std::coroutine_handle<> h) {
        state->waiters.push_back(h);
      }
      T await_resume() {
        if (state->error) std::rethrow_exception(state->error);
        return *state->value;  // copy: future may have several awaiters
      }
    };
    return Awaiter{state_};
  }

 private:
  std::shared_ptr<detail::SharedState<T>> state_;
};

template <typename T>
Future<T> Promise<T>::get_future() const {
  return Future<T>(state_);
}

}  // namespace sim
