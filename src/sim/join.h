// Structured concurrency helper: run several tasks concurrently and resume
// when every one of them has finished (MPI-style round synchronization).
#pragma once

#include <memory>
#include <vector>

#include "sim/event_loop.h"
#include "sim/task.h"

namespace sim {

namespace detail {

struct JoinState {
  int remaining = 0;
  Promise<bool> done;
  explicit JoinState(EventLoop& loop, int n) : remaining(n), done(loop) {}
};

inline Task<void> join_wrapper(Task<void> task,
                               std::shared_ptr<JoinState> state) {
  co_await std::move(task);
  if (--state->remaining == 0) state->done.set_value(true);
}

}  // namespace detail

// Spawns every task on the loop; the returned task completes when all have
// completed. An empty vector completes immediately.
inline Task<void> join_all(EventLoop& loop, std::vector<Task<void>> tasks) {
  if (tasks.empty()) co_return;
  auto state = std::make_shared<detail::JoinState>(
      loop, static_cast<int>(tasks.size()));
  auto future = state->done.get_future();
  for (auto& t : tasks) {
    loop.spawn(detail::join_wrapper(std::move(t), state));
  }
  co_await future;
}

}  // namespace sim
