#include "sim/event_loop.h"

#include <cassert>
#include <stdexcept>

#include "sim/task.h"

namespace sim {

// A root task is a Task<void> whose lifetime the loop owns. The coroutine
// frame is kept alive until the loop observes completion during reaping.
struct EventLoop::RootTask {
  Task<void> task;
  explicit RootTask(Task<void> t) : task(std::move(t)) {}
};

// Defined after RootTask is complete so ~vector<unique_ptr<RootTask>>
// instantiates here, not in the header.
EventLoop::EventLoop() = default;
EventLoop::~EventLoop() = default;

void EventLoop::schedule_at(Time t, Callback cb) {
  if (t < now_) t = now_;
  queue_.push(Event{t, seq_++, std::move(cb)});
}

void EventLoop::schedule_after(Time delay, Callback cb) {
  if (delay < 0) delay = 0;
  schedule_at(now_ + delay, std::move(cb));
}

void EventLoop::step() {
  assert(!queue_.empty());
  // priority_queue::top() is const; the callback must be moved out, so copy
  // the wrapper (std::function copy) before pop.
  Event ev = queue_.top();
  queue_.pop();
  assert(ev.t >= now_);
  now_ = ev.t;
  ++executed_;
  if (trace_enabled_) {
    mix_trace(static_cast<std::uint64_t>(ev.t));
    mix_trace(ev.seq);
  }
  ev.cb();
  if (audit_hook_ && executed_ % audit_every_ == 0) audit_hook_();
}

Time EventLoop::run() {
  while (!queue_.empty()) {
    step();
    if ((executed_ & 0x3ff) == 0) reap_finished_tasks();
  }
  reap_finished_tasks();
  return now_;
}

void EventLoop::run_until(Time deadline) {
  if (deadline < now_) return;
  while (!queue_.empty() && queue_.top().t <= deadline) {
    step();
    if ((executed_ & 0x3ff) == 0) reap_finished_tasks();
  }
  now_ = deadline;
  reap_finished_tasks();
}

void EventLoop::spawn(Task<void> task) {
  if (!task.valid() || task.done()) return;
  roots_.push_back(std::make_unique<RootTask>(std::move(task)));
  RootTask* root = roots_.back().get();
  auto handle = std::coroutine_handle<Task<void>::promise_type>::from_address(
      root->task.release().address());
  // Re-wrap the released handle so the RootTask still owns the frame.
  root->task = Task<void>(handle);
  schedule_after(0, [handle] { handle.resume(); });
}

void EventLoop::reap_finished_tasks() {
  std::exception_ptr first_error;
  auto it = roots_.begin();
  while (it != roots_.end()) {
    RootTask* r = it->get();
    if (r->task.done()) {
      auto handle =
          std::coroutine_handle<Task<void>::promise_type>::from_address(
              r->task.release().address());
      if (!first_error && handle.promise().error) {
        first_error = handle.promise().error;
      }
      handle.destroy();
      it = roots_.erase(it);
    } else {
      ++it;
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sim
