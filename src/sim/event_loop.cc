#include "sim/event_loop.h"

#include <cassert>
#include <stdexcept>

#include "sim/task.h"

namespace sim {

namespace {

using RootHandle = std::coroutine_handle<Task<void>::promise_type>;

RootHandle root_handle(void* addr) { return RootHandle::from_address(addr); }

}  // namespace

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() {
  // The loop owns every spawned frame, finished or not.
  for (void* addr : roots_) root_handle(addr).destroy();
}

void EventLoop::schedule_at(Time t, Callback cb) {
  if (probe_) probe_->on_loop_access(*this, "schedule");
  if (t < now_) t = now_;
  EventNode* n = pool_.acquire();
  n->t = t;
  n->seq = seq_++;
  n->cb = std::move(cb);
  queue_.push(n);
}

void EventLoop::schedule_after(Time delay, Callback cb) {
  if (delay < 0) delay = 0;
  schedule_at(now_ + delay, std::move(cb));
}

void EventLoop::step() {
  if (probe_) probe_->on_loop_access(*this, "execute");
  EventNode* n = queue_.pop();
  assert(n->t >= now_);
  now_ = n->t;
  last_event_time_ = n->t;
  ++executed_;
  if (trace_enabled_) {
    mix_trace(static_cast<std::uint64_t>(n->t));
    mix_trace(n->seq);
  }
  // Move the callback out and recycle the node *before* invoking: the
  // callback may schedule new events, and the freshest node is the one
  // most likely to still be in cache.
  Callback cb = std::move(n->cb);
  n->cb = nullptr;
  pool_.release(n);
  cb();
  if (audit_hook_ && executed_ % audit_every_ == 0) audit_hook_();
}

Time EventLoop::run() {
  while (!queue_.empty()) {
    step();
    if ((executed_ & 0x3ff) == 0) reap_finished_tasks();
  }
  reap_finished_tasks();
  return now_;
}

void EventLoop::run_until(Time deadline) {
  if (deadline < now_) return;
  while (queue_.next_time() <= deadline) {
    step();
    if ((executed_ & 0x3ff) == 0) reap_finished_tasks();
  }
  now_ = deadline;
  reap_finished_tasks();
}

void EventLoop::run_before(Time end) {
  if (end <= now_) return;
  while (queue_.next_time() < end) {
    step();
    if ((executed_ & 0x3ff) == 0) reap_finished_tasks();
  }
  now_ = end;
  reap_finished_tasks();
}

void EventLoop::spawn(Task<void> task) {
  if (!task.valid() || task.done()) return;
  RootHandle handle = task.release();
  handle.promise().root_owner = this;
  handle.promise().root_index = roots_.size();
  roots_.push_back(handle.address());
  schedule_after(0, [handle] { handle.resume(); });
}

void EventLoop::reap_finished_tasks() {
  if (finished_roots_.empty()) return;
  std::exception_ptr first_error;
  for (void* addr : finished_roots_) {
    RootHandle handle = root_handle(addr);
    if (!first_error && handle.promise().error) {
      first_error = handle.promise().error;
    }
    // Swap-erase from the root table, fixing up the moved frame's index.
    const std::size_t i = handle.promise().root_index;
    assert(i < roots_.size() && roots_[i] == addr);
    roots_[i] = roots_.back();
    root_handle(roots_[i]).promise().root_index = i;
    roots_.pop_back();
    handle.destroy();
  }
  finished_roots_.clear();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sim
