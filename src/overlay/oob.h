// Virtual TCP/IP overlay: vSwitch + VXLAN, reduced to the service RDMA
// applications actually consume — an out-of-band (OOB) message channel for
// exchanging connection information (QPN, GID, rkeys; Fig. 1 step 3 /
// Fig. 4 step (3)).
//
// Messages travel vEth -> vSwitch -> VXLAN tunnel -> peer, so they are
// subject to the tenant's security policy: the source VM's OUTPUT group,
// the firewall FORWARD chain and the destination VM's INPUT group all get
// a say. This is load-bearing for MasQ's security story — an RDMA
// connection cannot be established if the exchange itself is blocked
// (§3.3.2 subproblems 1 and 2).
//
// Tenants are isolated by construction: endpoints live inside a VNI and
// can only name peers within it, even when virtual IPs collide across
// tenants.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "net/addr.h"
#include "overlay/security.h"
#include "rnic/types.h"  // rnic::Status / Expected
#include "sim/event_loop.h"
#include "sim/task.h"

namespace overlay {

using Blob = std::vector<std::uint8_t>;

// Packs/unpacks trivially copyable structs for the OOB channel.
template <typename T>
Blob pack(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  Blob b(sizeof(T));
  std::memcpy(b.data(), &value, sizeof(T));
  return b;
}

template <typename T>
T unpack(const Blob& b) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (b.size() != sizeof(T)) {
    throw std::invalid_argument("oob unpack: size mismatch");
  }
  T v;
  std::memcpy(&v, b.data(), sizeof(T));
  return v;
}

class VirtualNetwork;

// One VM's vEth as seen by applications: send/recv datagram-style blobs to
// peers in the same tenant network, demultiplexed by port.
class OobEndpoint {
 public:
  OobEndpoint(VirtualNetwork& net, std::uint32_t vni, net::Ipv4Addr vip)
      : net_(net), vni_(vni), vip_(vip) {}

  std::uint32_t vni() const { return vni_; }
  net::Ipv4Addr vip() const { return vip_; }

  // Sends `data` to (dst, port). kPermissionDenied if a security rule
  // blocks the flow; kNotFound if no such peer exists in this tenant.
  sim::Task<rnic::Status> send(net::Ipv4Addr dst, std::uint16_t port,
                               Blob data);

  // Waits for the next message on `port`.
  sim::Task<Blob> recv(std::uint16_t port);

 private:
  friend class VirtualNetwork;
  void enqueue(std::uint16_t port, Blob data);

  VirtualNetwork& net_;
  std::uint32_t vni_;
  net::Ipv4Addr vip_;
  std::map<std::uint16_t, std::deque<Blob>> mailbox_;
  std::map<std::uint16_t, std::deque<sim::Promise<Blob>>> waiters_;
};

class VirtualNetwork {
 public:
  explicit VirtualNetwork(sim::EventLoop& loop,
                          sim::Time oneway_latency = sim::microseconds(25))
      : loop_(loop), oneway_(oneway_latency) {}

  sim::EventLoop& loop() { return loop_; }

  // Tenant policy handle (created on first use; default deny).
  SecurityPolicy& policy(std::uint32_t vni);

  // Plugs a VM's vEth into the tenant network. Creates the VM's security
  // group chains (default deny until rules are installed).
  OobEndpoint* create_endpoint(std::uint32_t vni, net::Ipv4Addr vip);
  void destroy_endpoint(OobEndpoint* ep);

  std::uint64_t messages_delivered() const { return delivered_; }
  std::uint64_t messages_blocked() const { return blocked_; }

 private:
  friend class OobEndpoint;
  sim::Task<rnic::Status> route(std::uint32_t vni, net::Ipv4Addr src,
                                net::Ipv4Addr dst, std::uint16_t port,
                                Blob data);

  struct EpKey {
    std::uint32_t vni;
    net::Ipv4Addr vip;
    auto operator<=>(const EpKey&) const = default;
  };

  sim::EventLoop& loop_;
  sim::Time oneway_;
  std::map<std::uint32_t, std::unique_ptr<SecurityPolicy>> policies_;
  std::map<EpKey, std::unique_ptr<OobEndpoint>> endpoints_;
  std::uint64_t delivered_ = 0;
  std::uint64_t blocked_ = 0;
};

}  // namespace overlay
