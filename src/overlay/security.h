// Security rules: FWaaS (network level) and security groups (VM level).
//
// §3.3.2: rules are organized as priority-ordered chains (INPUT / OUTPUT /
// FORWARD); a packet is checked against each chain and the first matching
// rule decides; if none matches the packet is denied. MasQ does not invent
// new security machinery — RConntrack evaluates *these same* chains at
// RDMA connection setup, and the virtual TCP path (where connection
// metadata travels) evaluates them per message.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/addr.h"

namespace overlay {

enum class RuleAction : std::uint8_t { kAllow, kDeny };
enum class Chain : std::uint8_t { kInput, kOutput, kForward };
enum class Proto : std::uint8_t { kAny, kTcp, kUdp, kRdma };

const char* to_string(Chain c);
const char* to_string(Proto p);

struct FlowTuple {
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  Proto proto = Proto::kTcp;

  bool operator==(const FlowTuple&) const = default;
};

struct Rule {
  int priority = 0;  // higher checked first
  RuleAction action = RuleAction::kDeny;
  Proto proto = Proto::kAny;
  net::Ipv4Cidr src = net::Ipv4Cidr::any();
  net::Ipv4Cidr dst = net::Ipv4Cidr::any();

  bool matches(const FlowTuple& t) const;

  static Rule allow(net::Ipv4Cidr src, net::Ipv4Cidr dst,
                    Proto proto = Proto::kAny, int priority = 0) {
    return Rule{priority, RuleAction::kAllow, proto, src, dst};
  }
  static Rule deny(net::Ipv4Cidr src, net::Ipv4Cidr dst,
                   Proto proto = Proto::kAny, int priority = 0) {
    return Rule{priority, RuleAction::kDeny, proto, src, dst};
  }
  static Rule allow_all(int priority = -1000) {
    return Rule{priority, RuleAction::kAllow, Proto::kAny,
                net::Ipv4Cidr::any(), net::Ipv4Cidr::any()};
  }
};

using RuleId = std::uint64_t;

class RuleChain {
 public:
  RuleId add_rule(Rule rule);
  bool remove_rule(RuleId id);
  void clear();

  // First match in descending priority order; default deny.
  RuleAction evaluate(const FlowTuple& t) const;

  std::size_t size() const { return rules_.size(); }
  // Bumped on every mutation; connection-tracking caches key off this.
  std::uint64_t version() const { return version_; }

 private:
  struct Entry {
    RuleId id;
    Rule rule;
  };
  // Sorted by (priority desc, id asc) for deterministic first-match.
  std::vector<Entry> rules_;
  RuleId next_id_ = 1;
  std::uint64_t version_ = 0;
};

// A tenant's complete policy: one FWaaS chain set plus a security group
// per VM (keyed by the VM's virtual IP).
class SecurityPolicy {
 public:
  explicit SecurityPolicy(std::uint32_t vni) : vni_(vni) {}

  std::uint32_t vni() const { return vni_; }

  RuleChain& firewall(Chain c) { return fw_[static_cast<int>(c)]; }
  RuleChain& security_group(net::Ipv4Addr vm, Chain c) {
    return sg_[vm][static_cast<int>(c)];
  }

  // A connection src->dst is allowed iff the firewall FORWARD chain, the
  // source VM's OUTPUT group and the destination VM's INPUT group all
  // allow it.
  bool connection_allowed(const FlowTuple& t) const;

  // Combined version across all chains of this tenant.
  std::uint64_t version() const;

  // Fires after any mutation (RConntrack subscribes to re-validate
  // established connections, §3.3.2 subproblem 3).
  void subscribe(std::function<void()> on_change) {
    observers_.push_back(std::move(on_change));
  }
  void notify_changed() const {
    for (const auto& fn : observers_) fn();
  }

  // Convenience: permit everything for this tenant (testbed default).
  void allow_all();

 private:
  std::uint32_t vni_;
  RuleChain fw_[3];
  std::map<net::Ipv4Addr, std::array<RuleChain, 3>> sg_;
  std::vector<std::function<void()>> observers_;
};

}  // namespace overlay

template <>
struct std::hash<overlay::FlowTuple> {
  std::size_t operator()(const overlay::FlowTuple& t) const noexcept {
    return std::hash<net::Ipv4Addr>{}(t.src) * 31 +
           std::hash<net::Ipv4Addr>{}(t.dst) * 7 +
           static_cast<std::size_t>(t.proto);
  }
};
