#include "overlay/security.h"

#include <algorithm>

namespace overlay {

const char* to_string(Chain c) {
  switch (c) {
    case Chain::kInput: return "INPUT";
    case Chain::kOutput: return "OUTPUT";
    case Chain::kForward: return "FORWARD";
  }
  return "?";
}

const char* to_string(Proto p) {
  switch (p) {
    case Proto::kAny: return "any";
    case Proto::kTcp: return "tcp";
    case Proto::kUdp: return "udp";
    case Proto::kRdma: return "rdma";
  }
  return "?";
}

bool Rule::matches(const FlowTuple& t) const {
  if (proto != Proto::kAny && proto != t.proto) return false;
  return src.contains(t.src) && dst.contains(t.dst);
}

RuleId RuleChain::add_rule(Rule rule) {
  const RuleId id = next_id_++;
  auto pos = std::find_if(rules_.begin(), rules_.end(),
                          [&](const Entry& e) {
                            return e.rule.priority < rule.priority;
                          });
  rules_.insert(pos, Entry{id, rule});
  ++version_;
  return id;
}

bool RuleChain::remove_rule(RuleId id) {
  auto it = std::find_if(rules_.begin(), rules_.end(),
                         [&](const Entry& e) { return e.id == id; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  ++version_;
  return true;
}

void RuleChain::clear() {
  rules_.clear();
  ++version_;
}

RuleAction RuleChain::evaluate(const FlowTuple& t) const {
  for (const Entry& e : rules_) {
    if (e.rule.matches(t)) return e.rule.action;
  }
  return RuleAction::kDeny;  // default deny (§3.3.2)
}

bool SecurityPolicy::connection_allowed(const FlowTuple& t) const {
  if (fw_[static_cast<int>(Chain::kForward)].evaluate(t) !=
      RuleAction::kAllow) {
    return false;
  }
  auto src_it = sg_.find(t.src);
  if (src_it == sg_.end() ||
      src_it->second[static_cast<int>(Chain::kOutput)].evaluate(t) !=
          RuleAction::kAllow) {
    return false;
  }
  auto dst_it = sg_.find(t.dst);
  if (dst_it == sg_.end() ||
      dst_it->second[static_cast<int>(Chain::kInput)].evaluate(t) !=
          RuleAction::kAllow) {
    return false;
  }
  return true;
}

std::uint64_t SecurityPolicy::version() const {
  std::uint64_t v = 0;
  for (const auto& c : fw_) v += c.version();
  for (const auto& [ip, chains] : sg_) {
    for (const auto& c : chains) v += c.version();
  }
  return v;
}

void SecurityPolicy::allow_all() {
  for (auto& c : fw_) c.add_rule(Rule::allow_all());
  for (auto& [ip, chains] : sg_) {
    for (auto& c : chains) c.add_rule(Rule::allow_all());
  }
  notify_changed();
}

}  // namespace overlay
