#include "overlay/oob.h"

namespace overlay {

sim::Task<rnic::Status> OobEndpoint::send(net::Ipv4Addr dst,
                                          std::uint16_t port, Blob data) {
  return net_.route(vni_, vip_, dst, port, std::move(data));
}

sim::Task<Blob> OobEndpoint::recv(std::uint16_t port) {
  auto& box = mailbox_[port];
  if (!box.empty()) {
    Blob b = std::move(box.front());
    box.pop_front();
    co_return b;
  }
  sim::Promise<Blob> p(net_.loop());
  auto f = p.get_future();
  waiters_[port].push_back(std::move(p));
  co_return co_await f;
}

void OobEndpoint::enqueue(std::uint16_t port, Blob data) {
  auto wit = waiters_.find(port);
  if (wit != waiters_.end() && !wit->second.empty()) {
    auto p = std::move(wit->second.front());
    wit->second.pop_front();
    p.set_value(std::move(data));
    return;
  }
  mailbox_[port].push_back(std::move(data));
}

SecurityPolicy& VirtualNetwork::policy(std::uint32_t vni) {
  auto it = policies_.find(vni);
  if (it == policies_.end()) {
    it = policies_.emplace(vni, std::make_unique<SecurityPolicy>(vni)).first;
  }
  return *it->second;
}

OobEndpoint* VirtualNetwork::create_endpoint(std::uint32_t vni,
                                             net::Ipv4Addr vip) {
  auto ep = std::make_unique<OobEndpoint>(*this, vni, vip);
  OobEndpoint* raw = ep.get();
  auto [it, inserted] = endpoints_.emplace(EpKey{vni, vip}, std::move(ep));
  if (!inserted) {
    throw std::logic_error("duplicate overlay endpoint " + vip.str() +
                           " in vni " + std::to_string(vni));
  }
  // Materialize the VM's security-group chains (default deny).
  SecurityPolicy& pol = policy(vni);
  pol.security_group(vip, Chain::kInput);
  pol.security_group(vip, Chain::kOutput);
  return raw;
}

void VirtualNetwork::destroy_endpoint(OobEndpoint* ep) {
  if (ep == nullptr) return;
  endpoints_.erase(EpKey{ep->vni(), ep->vip()});
}

sim::Task<rnic::Status> VirtualNetwork::route(std::uint32_t vni,
                                              net::Ipv4Addr src,
                                              net::Ipv4Addr dst,
                                              std::uint16_t port, Blob data) {
  auto it = endpoints_.find(EpKey{vni, dst});
  if (it == endpoints_.end()) {
    co_await sim::delay(loop_, oneway_ * 4);
    co_return rnic::Status::kNotFound;
  }
  // Security enforcement happens in the vSwitch before encapsulation.
  const FlowTuple tuple{src, dst, Proto::kTcp};
  if (!policy(vni).connection_allowed(tuple)) {
    ++blocked_;
    // The SYN is silently dropped; the caller sees a (shortened) connect
    // timeout rather than an instant refusal.
    co_await sim::delay(loop_, oneway_ * 4);
    co_return rnic::Status::kPermissionDenied;
  }
  co_await sim::delay(loop_, oneway_);
  ++delivered_;
  it->second->enqueue(port, std::move(data));
  co_return rnic::Status::kOk;
}

}  // namespace overlay
