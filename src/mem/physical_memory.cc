#include "mem/physical_memory.h"

#include <cstring>
#include <new>
#include <stdexcept>

namespace mem {

void SparseBytes::read(Addr addr, std::span<std::uint8_t> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const Addr pos = addr + done;
    const Addr chunk_idx = pos / kChunkBytes;
    const Addr offset = pos % kChunkBytes;
    const std::size_t n =
        std::min<std::size_t>(out.size() - done, kChunkBytes - offset);
    auto it = chunks_.find(chunk_idx);
    if (it == chunks_.end()) {
      std::memset(out.data() + done, 0, n);
    } else {
      std::memcpy(out.data() + done, it->second.data() + offset, n);
    }
    done += n;
  }
}

void SparseBytes::write(Addr addr, std::span<const std::uint8_t> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const Addr pos = addr + done;
    const Addr chunk_idx = pos / kChunkBytes;
    const Addr offset = pos % kChunkBytes;
    const std::size_t n =
        std::min<std::size_t>(in.size() - done, kChunkBytes - offset);
    auto it = chunks_.find(chunk_idx);
    if (it == chunks_.end()) {
      it = chunks_.emplace(chunk_idx,
                           std::vector<std::uint8_t>(kChunkBytes, 0)).first;
    }
    std::memcpy(it->second.data() + offset, in.data() + done, n);
    done += n;
  }
}

HostPhysMap::HostPhysMap(Addr dram_size) : dram_(page_ceil(dram_size)) {
  if (dram_.size() > 0) {
    free_list_[0] = page_number(dram_.size());
  }
  next_mmio_base_ = page_ceil(dram_.size()) + (Addr{1} << 40);  // above DRAM
}

Addr HostPhysMap::alloc_pages(Addr n_pages) {
  if (n_pages == 0) throw std::invalid_argument("alloc_pages: n_pages == 0");
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->second >= n_pages) {
      const Addr start_page = it->first;
      const Addr remaining = it->second - n_pages;
      free_list_.erase(it);
      if (remaining > 0) {
        free_list_[start_page + n_pages] = remaining;
      }
      allocated_pages_ += n_pages;
      return start_page * kPageSize;
    }
  }
  throw std::bad_alloc();
}

void HostPhysMap::free_pages(Addr hpa, Addr n_pages) {
  if (n_pages == 0) return;
  if ((hpa & kPageMask) != 0) {
    throw std::invalid_argument("free_pages: unaligned address");
  }
  const Addr start = page_number(hpa);
  auto [it, inserted] = free_list_.emplace(start, n_pages);
  if (!inserted) throw std::logic_error("free_pages: double free");
  allocated_pages_ -= n_pages;
  // Coalesce with successor.
  auto next = std::next(it);
  if (next != free_list_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_list_.erase(next);
  }
  // Coalesce with predecessor.
  if (it != free_list_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_list_.erase(it);
    }
  }
}

Addr HostPhysMap::register_mmio(Addr size, MmioDevice* device) {
  const Addr base = next_mmio_base_;
  next_mmio_base_ += page_ceil(size);
  mmio_.push_back(MmioRange{base, page_ceil(size), device});
  return base;
}

const HostPhysMap::MmioRange* HostPhysMap::find_mmio(Addr hpa) const {
  for (const auto& r : mmio_) {
    if (hpa >= r.base && hpa < r.base + r.size) return &r;
  }
  return nullptr;
}

bool HostPhysMap::is_mmio(Addr hpa) const { return find_mmio(hpa) != nullptr; }

void HostPhysMap::read(Addr hpa, std::span<std::uint8_t> out) const {
  if (out.empty()) return;
  if (hpa + out.size() <= dram_.size()) {
    dram_.read(hpa, out);
    return;
  }
  if (const MmioRange* r = find_mmio(hpa)) {
    if (out.size() != 8 || ((hpa - r->base) & 7) != 0) {
      throw std::invalid_argument("MMIO read must be one aligned u64");
    }
    const std::uint64_t v = r->device->mmio_read(hpa - r->base);
    std::memcpy(out.data(), &v, 8);
    return;
  }
  throw std::out_of_range("HostPhysMap::read: bad physical address");
}

void HostPhysMap::write(Addr hpa, std::span<const std::uint8_t> in) {
  if (in.empty()) return;
  if (hpa + in.size() <= dram_.size()) {
    dram_.write(hpa, in);
    return;
  }
  if (const MmioRange* r = find_mmio(hpa)) {
    if (in.size() != 8 || ((hpa - r->base) & 7) != 0) {
      throw std::invalid_argument("MMIO write must be one aligned u64");
    }
    std::uint64_t v;
    std::memcpy(&v, in.data(), 8);
    r->device->mmio_write(hpa - r->base, v);
    return;
  }
  throw std::out_of_range("HostPhysMap::write: bad physical address");
}

std::uint64_t HostPhysMap::read_u64(Addr hpa) const {
  std::uint8_t buf[8];
  read(hpa, buf);
  std::uint64_t v;
  std::memcpy(&v, buf, 8);
  return v;
}

void HostPhysMap::write_u64(Addr hpa, std::uint64_t value) {
  std::uint8_t buf[8];
  std::memcpy(buf, &value, 8);
  write(hpa, buf);
}

}  // namespace mem
