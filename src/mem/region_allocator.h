// First-fit page-granularity range allocator with coalescing free list.
// Used for DRAM pages (HostPhysMap), VA ranges inside address spaces, and
// guest-physical page allocation inside a VM.
#pragma once

#include <cstdint>
#include <map>

#include "mem/physical_memory.h"  // Addr, kPageSize

namespace mem {

class RegionAllocator {
 public:
  // Manages [base, base + size); both page aligned.
  RegionAllocator(Addr base, Addr size);

  // Allocates a page-aligned range of `len` bytes (rounded up to pages).
  // Throws std::bad_alloc on exhaustion.
  Addr alloc(Addr len);
  void free(Addr addr, Addr len);

  // Claims the exact range [addr, addr+len) out of the free list (live
  // migration restores guest buffers at their original virtual addresses).
  // Throws std::bad_alloc if any page of the range is already allocated.
  void reserve(Addr addr, Addr len);

  Addr base() const { return base_; }
  Addr size() const { return size_; }
  Addr bytes_allocated() const { return allocated_; }
  Addr bytes_free() const { return size_ - allocated_; }

 private:
  Addr base_;
  Addr size_;
  Addr allocated_ = 0;
  std::map<Addr, Addr> free_list_;  // start -> length (bytes)
};

}  // namespace mem
