// Page-table-backed virtual address spaces, stackable into the
// GVA -> GPA -> HVA -> HPA chain of the paper's Appendix B.
//
//   HostPhysMap   hpa(96 GiB DRAM + RNIC BARs)
//   AddressSpace  hva("qemu", &hpa)        // host page table
//   AddressSpace  gpa("vm0-ram", &hva)     // QEMU's GPA->HVA mapping
//   AddressSpace  gva("app", &gpa)         // guest page table
//
// resolve_hpa() walks the chain; pinned pages cannot be unmapped (memory
// registration pins both the guest and host page tables, exactly like the
// "create_qp" flow in Appendix B.2).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mem/physical_memory.h"
#include "mem/region_allocator.h"
#include "sim/flat_map.h"

namespace mem {

// A contiguous piece of a translated range: lower-level address + length.
struct Segment {
  Addr addr;
  Addr len;
};

class AddressSpace {
 public:
  // Root-level space translating directly into the physical map (HVA->HPA).
  AddressSpace(std::string name, HostPhysMap* phys);
  // Stacked space translating into `lower` (GVA->GPA, GPA->HVA).
  AddressSpace(std::string name, AddressSpace* lower);

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  const std::string& name() const { return name_; }
  AddressSpace* lower() const { return lower_; }
  HostPhysMap* phys() const;

  // --- page table -----------------------------------------------------
  // Maps [va, va+len) onto [lower_addr, lower_addr+len); page aligned.
  void map(Addr va, Addr lower_addr, Addr len);
  // Unmaps; throws std::logic_error if any page is pinned.
  void unmap(Addr va, Addr len);
  // Teardown unmap: clears entries even when pinned (an exiting guest
  // takes its DMA pins with it). Missing pages are ignored.
  void force_unmap(Addr va, Addr len);
  bool is_mapped(Addr va) const;
  std::size_t mapped_pages() const { return table_.size(); }

  // One-level translation. Offset within page preserved.
  std::optional<Addr> translate(Addr va) const;
  Addr translate_or_throw(Addr va) const;

  // Full walk to the host physical address.
  Addr resolve_hpa(Addr va) const;

  // Splits [va, va+len) into segments contiguous at this level's lower
  // space (page-merge where adjacent).
  std::vector<Segment> translate_range(Addr va, Addr len) const;

  // Splits [va, va+len) into segments contiguous in *host physical* memory
  // (full chain walk; what a driver writes into the device MTT).
  std::vector<Segment> resolve_hpa_range(Addr va, Addr len) const;

  // --- pinning ---------------------------------------------------------
  // Counted pins; pinned pages refuse unmap(). Walks only this level.
  void pin(Addr va, Addr len);
  void unpin(Addr va, Addr len);
  bool is_pinned(Addr va) const;

  // Pins this level and every level below (what a driver does before
  // handing an address to the device).
  void pin_chain(Addr va, Addr len);
  void unpin_chain(Addr va, Addr len);

  // --- data access -----------------------------------------------------
  // Reads/writes through the full chain to physical bytes. Ranges may
  // cross pages; unmapped pages throw std::out_of_range.
  void read(Addr va, std::span<std::uint8_t> out) const;
  void write(Addr va, std::span<const std::uint8_t> in);
  std::uint64_t read_u64(Addr va) const;
  void write_u64(Addr va, std::uint64_t value);

 private:
  struct Entry {
    Addr lower_page;   // page number in the lower space
    std::uint32_t pin_count = 0;
  };
  const Entry* find(Addr va) const;

  std::string name_;
  AddressSpace* lower_ = nullptr;  // nullptr at root level
  HostPhysMap* phys_ = nullptr;    // set at root level
  sim::FlatMap<Addr, Entry> table_;  // VA page number -> entry
};

}  // namespace mem
