#include "mem/region_allocator.h"

#include <new>
#include <stdexcept>

namespace mem {

RegionAllocator::RegionAllocator(Addr base, Addr size)
    : base_(base), size_(size) {
  if ((base & kPageMask) != 0 || (size & kPageMask) != 0) {
    throw std::invalid_argument("RegionAllocator: unaligned base/size");
  }
  if (size > 0) free_list_[base] = size;
}

Addr RegionAllocator::alloc(Addr len) {
  if (len == 0) throw std::invalid_argument("RegionAllocator::alloc: len==0");
  len = page_ceil(len);
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->second >= len) {
      const Addr start = it->first;
      const Addr remaining = it->second - len;
      free_list_.erase(it);
      if (remaining > 0) free_list_[start + len] = remaining;
      allocated_ += len;
      return start;
    }
  }
  throw std::bad_alloc();
}

void RegionAllocator::reserve(Addr addr, Addr len) {
  if (len == 0) throw std::invalid_argument("RegionAllocator::reserve: len==0");
  if ((addr & kPageMask) != 0) {
    throw std::invalid_argument("RegionAllocator::reserve: unaligned address");
  }
  len = page_ceil(len);
  if (addr < base_ || addr + len > base_ + size_) {
    throw std::out_of_range("RegionAllocator::reserve: range outside region");
  }
  // Find the free block containing [addr, addr+len) and split it.
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    const Addr start = it->first;
    const Addr end = start + it->second;
    if (addr < start || addr + len > end) continue;
    free_list_.erase(it);
    if (addr > start) free_list_[start] = addr - start;
    if (addr + len < end) free_list_[addr + len] = end - (addr + len);
    allocated_ += len;
    return;
  }
  throw std::bad_alloc();
}

void RegionAllocator::free(Addr addr, Addr len) {
  if (len == 0) return;
  len = page_ceil(len);
  if ((addr & kPageMask) != 0) {
    throw std::invalid_argument("RegionAllocator::free: unaligned address");
  }
  if (addr < base_ || addr + len > base_ + size_) {
    throw std::out_of_range("RegionAllocator::free: range outside region");
  }
  auto [it, inserted] = free_list_.emplace(addr, len);
  if (!inserted) throw std::logic_error("RegionAllocator::free: double free");
  allocated_ -= len;
  auto next = std::next(it);
  if (next != free_list_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_list_.erase(next);
  }
  if (it != free_list_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_list_.erase(it);
    }
  }
}

}  // namespace mem
