#include "mem/address_space.h"

#include <cstring>
#include <stdexcept>

namespace mem {

AddressSpace::AddressSpace(std::string name, HostPhysMap* phys)
    : name_(std::move(name)), phys_(phys) {}

AddressSpace::AddressSpace(std::string name, AddressSpace* lower)
    : name_(std::move(name)), lower_(lower) {}

HostPhysMap* AddressSpace::phys() const {
  const AddressSpace* s = this;
  while (s->lower_ != nullptr) s = s->lower_;
  return s->phys_;
}

void AddressSpace::map(Addr va, Addr lower_addr, Addr len) {
  if ((va & kPageMask) != 0 || (lower_addr & kPageMask) != 0 ||
      (len & kPageMask) != 0 || len == 0) {
    throw std::invalid_argument(name_ + ": map: unaligned arguments");
  }
  const Addr pages = len / kPageSize;
  for (Addr i = 0; i < pages; ++i) {
    const Addr vp = page_number(va) + i;
    if (table_.count(vp) != 0) {
      throw std::logic_error(name_ + ": map: page already mapped");
    }
  }
  for (Addr i = 0; i < pages; ++i) {
    table_[page_number(va) + i] = Entry{page_number(lower_addr) + i, 0};
  }
}

void AddressSpace::unmap(Addr va, Addr len) {
  if ((va & kPageMask) != 0 || (len & kPageMask) != 0) {
    throw std::invalid_argument(name_ + ": unmap: unaligned arguments");
  }
  const Addr pages = len / kPageSize;
  for (Addr i = 0; i < pages; ++i) {
    auto it = table_.find(page_number(va) + i);
    if (it == table_.end()) {
      throw std::out_of_range(name_ + ": unmap: page not mapped");
    }
    if (it->second.pin_count != 0) {
      throw std::logic_error(name_ + ": unmap: page is pinned");
    }
  }
  for (Addr i = 0; i < pages; ++i) {
    table_.erase(page_number(va) + i);
  }
}

void AddressSpace::force_unmap(Addr va, Addr len) {
  if ((va & kPageMask) != 0 || (len & kPageMask) != 0) {
    throw std::invalid_argument(name_ + ": force_unmap: unaligned arguments");
  }
  const Addr pages = len / kPageSize;
  for (Addr i = 0; i < pages; ++i) {
    table_.erase(page_number(va) + i);
  }
}

const AddressSpace::Entry* AddressSpace::find(Addr va) const {
  auto it = table_.find(page_number(va));
  return it == table_.end() ? nullptr : &it->second;
}

bool AddressSpace::is_mapped(Addr va) const { return find(va) != nullptr; }

std::optional<Addr> AddressSpace::translate(Addr va) const {
  const Entry* e = find(va);
  if (e == nullptr) return std::nullopt;
  return e->lower_page * kPageSize + (va & kPageMask);
}

Addr AddressSpace::translate_or_throw(Addr va) const {
  auto r = translate(va);
  if (!r) {
    throw std::out_of_range(name_ + ": translation fault at va=" +
                            std::to_string(va));
  }
  return *r;
}

Addr AddressSpace::resolve_hpa(Addr va) const {
  Addr a = translate_or_throw(va);
  for (const AddressSpace* s = lower_; s != nullptr; s = s->lower_) {
    a = s->translate_or_throw(a);
  }
  return a;
}

std::vector<Segment> AddressSpace::translate_range(Addr va, Addr len) const {
  std::vector<Segment> out;
  Addr pos = va;
  Addr remaining = len;
  while (remaining > 0) {
    const Addr lower_addr = translate_or_throw(pos);
    const Addr in_page = kPageSize - (pos & kPageMask);
    const Addr chunk = remaining < in_page ? remaining : in_page;
    if (!out.empty() && out.back().addr + out.back().len == lower_addr) {
      out.back().len += chunk;
    } else {
      out.push_back(Segment{lower_addr, chunk});
    }
    pos += chunk;
    remaining -= chunk;
  }
  return out;
}

std::vector<Segment> AddressSpace::resolve_hpa_range(Addr va, Addr len) const {
  std::vector<Segment> out;
  Addr pos = va;
  Addr remaining = len;
  while (remaining > 0) {
    const Addr hpa = resolve_hpa(pos);
    const Addr in_page = kPageSize - (pos & kPageMask);
    const Addr chunk = remaining < in_page ? remaining : in_page;
    if (!out.empty() && out.back().addr + out.back().len == hpa) {
      out.back().len += chunk;
    } else {
      out.push_back(Segment{hpa, chunk});
    }
    pos += chunk;
    remaining -= chunk;
  }
  return out;
}

void AddressSpace::pin(Addr va, Addr len) {
  const Addr first = page_number(va);
  const Addr last = page_number(va + (len == 0 ? 0 : len - 1));
  for (Addr p = first; p <= last; ++p) {
    auto it = table_.find(p);
    if (it == table_.end()) {
      throw std::out_of_range(name_ + ": pin: page not mapped");
    }
    ++it->second.pin_count;
  }
}

void AddressSpace::unpin(Addr va, Addr len) {
  const Addr first = page_number(va);
  const Addr last = page_number(va + (len == 0 ? 0 : len - 1));
  for (Addr p = first; p <= last; ++p) {
    auto it = table_.find(p);
    if (it == table_.end() || it->second.pin_count == 0) {
      throw std::logic_error(name_ + ": unpin: page not pinned");
    }
    --it->second.pin_count;
  }
}

bool AddressSpace::is_pinned(Addr va) const {
  const Entry* e = find(va);
  return e != nullptr && e->pin_count > 0;
}

void AddressSpace::pin_chain(Addr va, Addr len) {
  pin(va, len);
  if (lower_ != nullptr) {
    const Addr lower_addr = translate_or_throw(page_floor(va));
    // Pages map 1:1 in this model, so the lower range has the same extent.
    lower_->pin_chain(lower_addr + (va & kPageMask), len);
  }
}

void AddressSpace::unpin_chain(Addr va, Addr len) {
  unpin(va, len);
  if (lower_ != nullptr) {
    const Addr lower_addr = translate_or_throw(page_floor(va));
    lower_->unpin_chain(lower_addr + (va & kPageMask), len);
  }
}

void AddressSpace::read(Addr va, std::span<std::uint8_t> out) const {
  HostPhysMap* pm = phys();
  Addr pos = va;
  std::size_t done = 0;
  while (done < out.size()) {
    const Addr hpa = resolve_hpa(pos);
    const Addr in_page = kPageSize - (pos & kPageMask);
    const std::size_t chunk =
        std::min<std::size_t>(out.size() - done, in_page);
    pm->read(hpa, out.subspan(done, chunk));
    pos += chunk;
    done += chunk;
  }
}

void AddressSpace::write(Addr va, std::span<const std::uint8_t> in) {
  HostPhysMap* pm = phys();
  Addr pos = va;
  std::size_t done = 0;
  while (done < in.size()) {
    const Addr hpa = resolve_hpa(pos);
    const Addr in_page = kPageSize - (pos & kPageMask);
    const std::size_t chunk = std::min<std::size_t>(in.size() - done, in_page);
    pm->write(hpa, in.subspan(done, chunk));
    pos += chunk;
    done += chunk;
  }
}

std::uint64_t AddressSpace::read_u64(Addr va) const {
  std::uint8_t buf[8];
  read(va, buf);
  std::uint64_t v;
  std::memcpy(&v, buf, 8);
  return v;
}

void AddressSpace::write_u64(Addr va, std::uint64_t value) {
  std::uint8_t buf[8];
  std::memcpy(buf, &value, 8);
  write(va, buf);
}

}  // namespace mem
