// Simulated host DRAM plus an MMIO-capable physical address map.
//
// The paper's Appendix B describes two mapping directions:
//   device -> VM : RNIC doorbell registers appear in the CPU physical
//                  address space (PCI MMIO) and are mapped up into the
//                  guest application's virtual address space;
//   VM -> device : guest buffers (QPs, MRs) are pinned and translated
//                  GVA -> GPA -> HVA -> HPA so the RNIC can DMA them.
// HostPhysMap is the root of both chains: DRAM occupies [0, dram_size) and
// device BARs are registered above it. Reads/writes route to DRAM bytes or
// to device callbacks. Real payload bytes live here — RDMA operations in
// this code base move actual data.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace mem {

using Addr = std::uint64_t;

inline constexpr Addr kPageSize = 4096;
inline constexpr Addr kPageMask = kPageSize - 1;

inline constexpr Addr page_floor(Addr a) { return a & ~kPageMask; }
inline constexpr Addr page_ceil(Addr a) { return (a + kPageMask) & ~kPageMask; }
inline constexpr Addr page_number(Addr a) { return a / kPageSize; }

// Sparse byte store: chunks materialize on first write, reads of untouched
// ranges yield zeros. Lets a testbed model 96 GiB hosts (Table 5) while
// only paying real memory for bytes applications actually touch.
class SparseBytes {
 public:
  explicit SparseBytes(Addr size) : size_(size) {}

  Addr size() const { return size_; }

  void read(Addr addr, std::span<std::uint8_t> out) const;
  void write(Addr addr, std::span<const std::uint8_t> in);

 private:
  static constexpr Addr kChunkBytes = 64 * 1024;

  Addr size_;
  std::map<Addr, std::vector<std::uint8_t>> chunks_;  // chunk index -> bytes
};

// A device exposing memory-mapped registers (e.g. an RNIC doorbell BAR).
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;
  // `offset` is relative to the BAR base.
  virtual void mmio_write(Addr offset, std::uint64_t value) = 0;
  virtual std::uint64_t mmio_read(Addr offset) = 0;
};

// The host physical address (HPA) space: DRAM plus registered MMIO BARs.
class HostPhysMap {
 public:
  explicit HostPhysMap(Addr dram_size);

  Addr dram_size() const { return dram_.size(); }

  // Allocates `n_pages` contiguous DRAM pages; returns HPA of the first.
  // Throws std::bad_alloc when DRAM is exhausted.
  Addr alloc_pages(Addr n_pages);
  void free_pages(Addr hpa, Addr n_pages);
  // Pages currently allocated (for the Table-5 max-VM experiment).
  Addr allocated_pages() const { return allocated_pages_; }

  // Registers a device BAR of `size` bytes; returns its HPA base.
  Addr register_mmio(Addr size, MmioDevice* device);

  bool is_mmio(Addr hpa) const;

  // Byte access. DRAM accesses may cross pages; MMIO accesses must be
  // 8-byte aligned single words. Out-of-range access throws.
  void read(Addr hpa, std::span<std::uint8_t> out) const;
  void write(Addr hpa, std::span<const std::uint8_t> in);
  std::uint64_t read_u64(Addr hpa) const;
  void write_u64(Addr hpa, std::uint64_t value);

 private:
  struct MmioRange {
    Addr base;
    Addr size;
    MmioDevice* device;
  };
  const MmioRange* find_mmio(Addr hpa) const;

  SparseBytes dram_;
  // Free list keyed by start page -> page count; adjacent ranges coalesced.
  std::map<Addr, Addr> free_list_;
  Addr allocated_pages_ = 0;
  std::vector<MmioRange> mmio_;
  Addr next_mmio_base_;
};

}  // namespace mem
