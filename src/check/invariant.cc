#include "check/invariant.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace check {

namespace {

std::string format_violation(const Violation& v) {
  std::ostringstream os;
  os << "[masq-check] invariant '" << v.invariant << "' violated at point '"
     << v.point << "' t=" << v.at << ": " << v.diagnostic;
  return os.str();
}

// MASQ_CHECK_LOG names a file each violation line is appended to — the CI
// chaos job uploads it as an artifact so a red run carries its diagnosis.
void append_to_log(const std::string& line) {
  const char* path = std::getenv("MASQ_CHECK_LOG");
  if (path == nullptr || *path == '\0') return;
  std::ofstream f(path, std::ios::app);
  if (f) f << line << '\n';
}

}  // namespace

bool env_enabled() {
  const char* v = std::getenv("MASQ_CHECK");
  if (v == nullptr || *v == '\0') return false;
  return !(v[0] == '0' && v[1] == '\0');
}

InvariantViolationError::InvariantViolationError(const Violation& v)
    : std::runtime_error(format_violation(v)) {}

InvariantRegistry::InvariantRegistry(sim::EventLoop& loop) : loop_(loop) {}

InvariantRegistry::~InvariantRegistry() { detach(); }

void InvariantRegistry::add_auditor(std::string name, AuditFn fn) {
  auditors_.emplace_back(std::move(name), std::move(fn));
}

void InvariantRegistry::audit(std::string_view point) {
  ++audits_;
  for (auto& [name, fn] : auditors_) {
    ++checks_;
    Reporter reporter(*this, name, point);
    fn(reporter);
  }
}

void InvariantRegistry::attach(std::uint64_t every_n_events) {
  loop_.set_audit_hook(every_n_events, [this] { audit("periodic"); });
  attached_ = true;
}

void InvariantRegistry::detach() {
  if (!attached_) return;
  loop_.clear_audit_hook();
  attached_ = false;
}

void InvariantRegistry::report_violation(std::string invariant,
                                         std::string_view point,
                                         std::string diagnostic) {
  Violation v{std::move(invariant), std::string(point), loop_.now(),
              std::move(diagnostic)};
  violations_.push_back(v);
  append_to_log(format_violation(v));
  if (policy_ == ViolationPolicy::kThrow) throw InvariantViolationError(v);
}

std::string InvariantRegistry::report() const {
  std::string out;
  for (const Violation& v : violations_) {
    out += format_violation(v);
    out += '\n';
  }
  return out;
}

}  // namespace check
