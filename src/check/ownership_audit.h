// (6) Partition-ownership auditor — the runtime half of the DESIGN.md §16
// ownership contract.
//
// The static `shared-state` lint pass proves there is no *undeclared*
// shared mutable state; this auditor proves the *declared* ownership is
// respected at runtime. It installs a LoopAccessProbe on every EventLoop
// of a PartitionGroup and registers as the group's WindowObserver, so it
// sees (a) every loop mutation (schedule / event execution) and (b) every
// window open/close, on the thread that performs it. Auxiliary
// per-partition state — PartDrivers, hot tables, arenas — is tagged with
// tag_state(); hot paths then call note_state_access() at their entry
// points.
//
// Legality rule (one sentence): touching partition p's state is legal iff
// the calling thread is currently inside p's window, or no window is open
// anywhere (the barrier phase, where the single-threaded coordinator may
// touch everything). Each access records a (partition, thread, in-window)
// triple; an illegal one produces a diagnostic naming the object, its
// owning partition, the accessing thread, that thread's window context,
// and the operation — under ViolationPolicy::kThrow it throws
// InvariantViolationError from the access site, so the stack names the
// racing code path.
//
// The auditor only observes: it never schedules events or mutates any
// loop, so an armed run is event-for-event and trace-hash identical to an
// unarmed one (ScalePartitionTest.AuditorPreservesReport holds it to
// that).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/invariant.h"
#include "sim/ownership.h"
#include "sim/partition.h"

namespace check {

class PartitionOwnershipAuditor : public sim::LoopAccessProbe,
                                  public sim::WindowObserver {
 public:
  // Installs probes on every loop of `group` and becomes its window
  // observer. `group` must outlive this auditor (the destructor
  // uninstalls everything).
  explicit PartitionOwnershipAuditor(
      sim::PartitionGroup& group,
      ViolationPolicy policy = ViolationPolicy::kThrow);
  ~PartitionOwnershipAuditor() override;
  PartitionOwnershipAuditor(const PartitionOwnershipAuditor&) = delete;
  PartitionOwnershipAuditor& operator=(const PartitionOwnershipAuditor&) =
      delete;

  // Tags auxiliary state (a PartDriver, a hot table, an arena) as owned by
  // `partition`; `name` appears in diagnostics. Must be called while no
  // window is open (setup or barrier phase).
  void tag_state(const void* object, std::string name,
                 std::size_t partition);

  // Hot-path entry points call this on tagged objects; untagged pointers
  // are ignored (cheap no-op for state the caller never registered).
  void note_state_access(const void* object);

  // sim::LoopAccessProbe — every schedule/execute on an audited loop.
  void on_loop_access(const sim::EventLoop& loop, const char* op) override;

  // sim::WindowObserver — window bracketing, on the running thread.
  void on_window_begin(std::size_t partition) override;
  void on_window_end(std::size_t partition) override;

  // Total accesses validated (loop + tagged state). Lets tests prove the
  // auditor actually observed a run instead of silently watching nothing.
  std::uint64_t accesses_recorded() const {
    return accesses_.load(std::memory_order_relaxed);
  }

  // Violations collected under ViolationPolicy::kRecord (copy: the vector
  // may be appended to from worker threads).
  std::vector<Violation> violations() const;

  // Corruption hook: forges this thread's window context so tests can
  // prove illegal access patterns fire without racing real threads. A
  // forged in_window=true claim also opens a window (and clear_ closes
  // it), so the legality check sees the same world a racing worker would.
  void set_thread_context_for_test(std::size_t partition, bool in_window);
  void clear_thread_context_for_test();

 private:
  void check_access(std::size_t partition, const std::string& what,
                    const char* op, sim::Time at);
  void fail(Violation v);

  sim::PartitionGroup& group_;
  ViolationPolicy policy_;

  // Both maps are written only during setup / between windows and read
  // concurrently during windows; tag_state() enforces that discipline.
  std::unordered_map<const sim::EventLoop*, std::size_t> loop_partition_;
  struct StateTag {
    std::string name;
    std::size_t partition;
  };
  std::unordered_map<const void*, StateTag> tagged_;

  std::atomic<int> open_windows_{0};
  std::atomic<std::uint64_t> accesses_{0};

  mutable std::mutex violations_mu_;
  std::vector<Violation> violations_;
};

}  // namespace check
