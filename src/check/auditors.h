// The invariant catalog (DESIGN.md §11): one registration function per
// auditor. Each takes the InvariantRegistry plus const-refs/refs to the
// live components it inspects; registration captures those references, so
// the components must outlive the registry's last audit.
//
// The five auditors:
//   qp-state     — every observed QP state change is reachable through the
//                  Fig. 5 FSM (modify edges + hardware error edges), and no
//                  connected QP's hardware QPC holds a tenant-virtual GID
//                  (RConnrename's postcondition).
//   vq-ring      — virtqueue descriptor accounting balances: acquired −
//                  released == in-flight, bounded by the ring; at
//                  quiescence nothing is in flight or waiting. Catches
//                  leaked/duplicated descriptors across fault injections.
//   cache        — host mapping caches agree with controller truth when the
//                  controller is reachable and broadcasts are drained;
//                  degraded-mode staleness never exceeded its bound; the
//                  negative cache respects its size bound.
//   conntrack    — every RConntrack row references a QP that exists and is
//                  not in ERROR (modulo purges the backend has scheduled
//                  but not yet drained).
//   determinism  — two runs of the same scenario on fresh event loops
//                  produce bit-identical trace hashes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "check/invariant.h"

namespace rnic {
class RnicDevice;
}
namespace sdn {
class Controller;
class MappingCache;
}
namespace masq {
class Backend;
}

namespace check {

// (1) QP state-machine legality + RConnrename postcondition. Tracks the
// last state observed per QPN and requires the current state to be
// reachable from it via the Fig. 5 edge relation (multi-step: audits are
// periodic, several legal transitions may land between two looks).
void register_qp_auditor(InvariantRegistry& registry, rnic::RnicDevice& device,
                         const sdn::Controller& controller);

// (2) Virtqueue ring accounting. Virtqueue<Req, Resp> is a template, so
// the auditor works against a type-erased probe; make_ring_probe() builds
// one from any instantiation.
struct RingProbe {
  std::string name;  // e.g. "host0/vm2" — names the queue in diagnostics
  std::function<std::uint64_t()> acquired;
  std::function<std::uint64_t()> released;
  std::function<int()> in_flight;
  std::function<int()> ring_size;
  std::function<std::size_t()> waiting;
};

template <typename Vq>
RingProbe make_ring_probe(std::string name, const Vq& vq) {
  return RingProbe{
      std::move(name),
      [&vq] { return vq.slots_acquired(); },
      [&vq] { return vq.slots_released(); },
      [&vq] { return vq.in_flight(); },
      [&vq] { return vq.ring_size(); },
      [&vq] { return vq.waiting_callers(); },
  };
}

void register_ring_auditor(InvariantRegistry& registry, RingProbe probe);

// (3) Mapping-cache coherence against controller truth.
void register_cache_auditor(InvariantRegistry& registry,
                            const sdn::MappingCache& cache,
                            const sdn::Controller& controller);

// (4) RConntrack <-> QP consistency for one backend (its device + table).
void register_conntrack_auditor(InvariantRegistry& registry,
                                masq::Backend& backend);

// (6) Migration no-WQE-lost. masq::Migrator digests every QP's queued
// WQEs and every CQ's undelivered CQEs on the source, re-digests after the
// destination restore, and reports any mismatch — but it lives below
// src/check in the layering and cannot link the registry directly. This
// builds the callback it reports through: violations land under the
// "migration-wqe" invariant with the Migrator's diagnostic (QP/CQ id,
// both digests, queue depths) verbatim.
std::function<void(std::string_view, std::string_view, std::string)>
make_migration_reporter(InvariantRegistry& registry);

// (5) Determinism. Runs `scenario` twice, each on a fresh trace-enabled
// event loop, and compares the trace hashes. The callback owns the whole
// run: build the world, schedule work, and drive loop.run() to completion
// before returning (world objects must outlive the run, so they live
// inside the callback).
struct DeterminismResult {
  std::uint64_t first_hash = 0;
  std::uint64_t second_hash = 0;
  bool identical() const { return first_hash == second_hash; }
};

DeterminismResult run_twice(
    const std::function<void(sim::EventLoop&)>& scenario);

// run_twice + a registry-reported violation when the hashes differ.
void audit_determinism(InvariantRegistry& registry,
                       const std::function<void(sim::EventLoop&)>& scenario);

}  // namespace check
