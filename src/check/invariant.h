// Runtime invariant auditing (masq-check).
//
// The simulator's correctness argument rests on whole-system invariants no
// single unit test sees: physical-only GIDs in every QPC past RTR, legal
// Fig. 5 QP transitions, balanced virtqueue ring accounting across fault
// injections, host caches coherent with controller truth, and an
// RConntrack table that tracks exactly the live admitted connections. The
// InvariantRegistry turns those into machine-checked audits: components
// register auditors (src/check/auditors.h), and the registry runs them at
// configurable audit points — periodically from the event loop's audit
// hook, at quiescence, or explicitly from tests.
//
// Cost model: auditing is opt-in. With no registry attached the event loop
// pays one branch per event; a disabled run is bit-identical to a run
// before this subsystem existed. `MASQ_CHECK=1` in the environment turns
// auditing on for every fabric::Testbed, which is how ctest and the CI
// chaos job double as model-checking runs.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/event_loop.h"
#include "sim/time.h"

namespace check {

// Master switch: true if MASQ_CHECK is set to anything but "" or "0".
bool env_enabled();

// One failed invariant check.
struct Violation {
  std::string invariant;   // auditor name, e.g. "qp-state"
  std::string point;       // audit point, e.g. "periodic", "quiesce"
  sim::Time at = 0;        // simulated time of the audit
  std::string diagnostic;  // precise, actionable description
};

// Thrown on violation under ViolationPolicy::kThrow; propagates out of
// EventLoop::run() so the owning test fails with the diagnostic.
class InvariantViolationError : public std::runtime_error {
 public:
  explicit InvariantViolationError(const Violation& v);
};

enum class ViolationPolicy : std::uint8_t {
  kThrow,   // record, log, then throw InvariantViolationError (default)
  kRecord,  // record and log only; callers inspect violations()
};

class InvariantRegistry {
 public:
  // Handed to each auditor; fail() reports a violation attributed to the
  // auditor at the current audit point.
  class Reporter {
   public:
    void fail(std::string diagnostic) {
      registry_.report_violation(std::string(invariant_), point_,
                                 std::move(diagnostic));
    }
    std::string_view point() const { return point_; }

   private:
    friend class InvariantRegistry;
    Reporter(InvariantRegistry& registry, std::string_view invariant,
             std::string_view point)
        : registry_(registry), invariant_(invariant), point_(point) {}
    InvariantRegistry& registry_;
    std::string_view invariant_;
    std::string_view point_;
  };

  using AuditFn = std::function<void(Reporter&)>;

  explicit InvariantRegistry(sim::EventLoop& loop);
  ~InvariantRegistry();
  InvariantRegistry(const InvariantRegistry&) = delete;
  InvariantRegistry& operator=(const InvariantRegistry&) = delete;

  void add_auditor(std::string name, AuditFn fn);
  // Drops the auditor(s) registered under exactly this name. Needed when an
  // audited component dies before the registry (e.g. an instance's
  // virtqueue torn down by live migration).
  void remove_auditor(std::string_view name) {
    std::erase_if(auditors_,
                  [name](const auto& a) { return a.first == name; });
  }

  // Runs every auditor once, tagged with `point`.
  void audit(std::string_view point);

  // Arms the loop's audit hook: audit("periodic") every n executed events.
  // The registry must outlive the attachment (detach() or destruction
  // clears the hook).
  void attach(std::uint64_t every_n_events);
  void detach();

  // Direct reporting path for checks that do not run as registered
  // auditors (e.g. the determinism run-twice harness).
  void report_violation(std::string invariant, std::string_view point,
                        std::string diagnostic);

  void set_policy(ViolationPolicy p) { policy_ = p; }
  ViolationPolicy policy() const { return policy_; }

  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t audits_run() const { return audits_; }
  // Individual auditor invocations (audits x registered auditors).
  std::uint64_t checks_run() const { return checks_; }
  std::size_t num_auditors() const { return auditors_.size(); }

  // Human-readable violation list, one line each; empty string when clean.
  std::string report() const;

  sim::EventLoop& loop() { return loop_; }

 private:
  sim::EventLoop& loop_;
  std::vector<std::pair<std::string, AuditFn>> auditors_;
  std::vector<Violation> violations_;
  ViolationPolicy policy_ = ViolationPolicy::kThrow;
  std::uint64_t audits_ = 0;
  std::uint64_t checks_ = 0;
  bool attached_ = false;
};

}  // namespace check
