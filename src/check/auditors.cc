#include "check/auditors.h"

#include <array>
#include <map>
#include <memory>
#include <sstream>

#include "masq/backend.h"
#include "masq/rconntrack.h"
#include "rnic/device.h"
#include "rnic/qp_state.h"
#include "sdn/controller.h"

namespace check {

namespace {

constexpr int kNumQpStates = 7;  // Fig. 5: RESET..ERROR

// Multi-step reachability closure over the Fig. 5 edge relation (driver
// modify edges plus hardware error edges). Audits are periodic, so several
// legal transitions can land between two observations of the same QP — the
// auditor asks "is there *any* legal path", not "is this one edge legal".
const std::array<std::array<bool, kNumQpStates>, kNumQpStates>&
qp_reachability() {
  static const auto table = [] {
    std::array<std::array<bool, kNumQpStates>, kNumQpStates> r{};
    for (int a = 0; a < kNumQpStates; ++a) {
      for (int b = 0; b < kNumQpStates; ++b) {
        const auto from = static_cast<rnic::QpState>(a);
        const auto to = static_cast<rnic::QpState>(b);
        r[a][b] = a == b || rnic::modify_allowed(from, to) ||
                  rnic::hw_error_transition_allowed(from, to);
      }
    }
    for (int k = 0; k < kNumQpStates; ++k) {
      for (int i = 0; i < kNumQpStates; ++i) {
        for (int j = 0; j < kNumQpStates; ++j) {
          r[i][j] = r[i][j] || (r[i][k] && r[k][j]);
        }
      }
    }
    return r;
  }();
  return table;
}

bool qp_state_reachable(rnic::QpState from, rnic::QpState to) {
  return qp_reachability()[static_cast<int>(from)][static_cast<int>(to)];
}

// States whose QPC the hardware consults for addressing: a virtual GID
// surviving here means RConnrename failed (the frame would be unroutable
// on the underlay).
bool qp_state_is_connected(rnic::QpState s) {
  return s == rnic::QpState::kRtr || s == rnic::QpState::kRts ||
         s == rnic::QpState::kSqd || s == rnic::QpState::kSqe;
}

}  // namespace

void register_qp_auditor(InvariantRegistry& registry, rnic::RnicDevice& device,
                         const sdn::Controller& controller) {
  // Last observed (state, legal-transition count) per QPN. QPNs are never
  // reused (the device hands them out from a monotone counter), so a QPN
  // absent from the previous observation is a fresh QP born in RESET.
  // Audits are periodic, so legality is judged against the count delta:
  //   delta 0  -> the state must not have changed at all (a change with no
  //               legal transition recorded is corruption by definition);
  //   delta 1  -> the change must be one legal Fig. 5 edge;
  //   delta >1 -> any multi-step path (each step was validated by the
  //               device when it happened), checked against the closure.
  struct Observed {
    rnic::QpState state = rnic::QpState::kReset;
    std::uint32_t transitions = 0;
  };
  auto seen = std::make_shared<std::map<rnic::Qpn, Observed>>();
  registry.add_auditor(
      "qp-state[" + device.config().name + "]",
      [&device, &controller, seen](InvariantRegistry::Reporter& r) {
        std::map<rnic::Qpn, Observed> current;
        for (rnic::Qpn qpn : device.qp_numbers()) {
          const rnic::QpState state = device.qp_state(qpn);
          const std::uint32_t transitions = device.qp_state_transitions(qpn);
          current[qpn] = Observed{state, transitions};
          const auto prev = seen->find(qpn);
          const Observed last =
              prev == seen->end() ? Observed{} : prev->second;
          const std::uint32_t delta = transitions - last.transitions;
          if (delta == 0 && state != last.state) {
            std::ostringstream os;
            os << "QP " << qpn << " changed " << rnic::to_string(last.state)
               << " -> " << rnic::to_string(state)
               << " without performing any legal Fig. 5 transition";
            r.fail(os.str());
          } else if (delta == 1 &&
                     !(state == last.state ||
                       rnic::modify_allowed(last.state, state) ||
                       rnic::hw_error_transition_allowed(last.state, state))) {
            std::ostringstream os;
            os << "QP " << qpn << " moved " << rnic::to_string(last.state)
               << " -> " << rnic::to_string(state)
               << " which is not a legal Fig. 5 edge";
            r.fail(os.str());
          } else if (delta > 1 && !qp_state_reachable(last.state, state)) {
            std::ostringstream os;
            os << "QP " << qpn << " moved " << rnic::to_string(last.state)
               << " -> " << rnic::to_string(state)
               << " with no legal Fig. 5 path between them";
            r.fail(os.str());
          }
          if (qp_state_is_connected(state)) {
            const net::Gid& dgid = device.qp_hw_attr(qpn).dest_gid;
            if (controller.is_virtual_gid(dgid)) {
              std::ostringstream os;
              os << "QP " << qpn << " in state " << rnic::to_string(state)
                 << " holds tenant-virtual dest GID " << dgid.str()
                 << " in its hardware QPC (RConnrename postcondition)";
              r.fail(os.str());
            }
          }
        }
        *seen = std::move(current);
      });
}

void register_ring_auditor(InvariantRegistry& registry, RingProbe probe) {
  // Built before the lambda's init-capture moves `probe` out — argument
  // evaluation order is unspecified, so reading probe.name inline races
  // the move.
  std::string name = "vq-ring[" + probe.name + "]";
  registry.add_auditor(
      std::move(name),
      [p = std::move(probe)](InvariantRegistry::Reporter& r) {
        const std::uint64_t acquired = p.acquired();
        const std::uint64_t released = p.released();
        const int in_flight = p.in_flight();
        const int ring_size = p.ring_size();
        if (released > acquired) {
          std::ostringstream os;
          os << "descriptor released twice: released=" << released
             << " > acquired=" << acquired;
          r.fail(os.str());
        } else if (acquired - released !=
                   static_cast<std::uint64_t>(in_flight)) {
          std::ostringstream os;
          os << "ring accounting drifted: acquired=" << acquired
             << " released=" << released << " but in_flight=" << in_flight
             << " (descriptor leaked or duplicated)";
          r.fail(os.str());
        }
        if (in_flight < 0 || in_flight > ring_size) {
          std::ostringstream os;
          os << "in_flight=" << in_flight << " escapes ring bounds [0, "
             << ring_size << "]";
          r.fail(os.str());
        }
        if (r.point() == "quiesce") {
          if (in_flight != 0) {
            std::ostringstream os;
            os << in_flight << " descriptor(s) still in flight at quiescence";
            r.fail(os.str());
          }
          if (p.waiting() != 0) {
            std::ostringstream os;
            os << p.waiting() << " caller(s) still waiting for ring slots at "
               << "quiescence";
            r.fail(os.str());
          }
        }
      });
}

void register_cache_auditor(InvariantRegistry& registry,
                            const sdn::MappingCache& cache,
                            const sdn::Controller& controller) {
  registry.add_auditor(
      "cache", [&cache, &controller](InvariantRegistry::Reporter& r) {
        if (cache.max_served_staleness() > cache.staleness_bound()) {
          std::ostringstream os;
          os << "degraded mode served an entry " << cache.max_served_staleness()
             << " stale, past the bound " << cache.staleness_bound();
          r.fail(os.str());
        }
        if (cache.negative_size() > sdn::MappingCache::max_negative_entries()) {
          std::ostringstream os;
          os << "negative cache holds " << cache.negative_size()
             << " entries, past its bound "
             << sdn::MappingCache::max_negative_entries();
          r.fail(os.str());
        }
        // Entry-by-entry truth check, scoped per shard: an entry may
        // legitimately diverge only while *its* shard is unreachable or
        // still has buffered broadcasts to replay — an outage of shard 3
        // is no excuse for a wrong mapping on shard 0. (Pre-sharding this
        // check bailed globally on any outage.)
        cache.for_each_entry([&](const sdn::VirtKey& key, net::Gid pgid,
                                 sim::Time /*confirmed_at*/) {
          const std::size_t shard = controller.shard_of(key.vni, key.vgid);
          if (!controller.shard_reachable(shard) ||
              controller.shard_pending_broadcasts(shard) != 0) {
            return;
          }
          const std::optional<net::Gid> truth =
              controller.lookup(key.vni, key.vgid);
          if (!truth.has_value()) {
            std::ostringstream os;
            os << "cache serves (vni=" << key.vni << ", vgid="
               << key.vgid.str() << ") on shard " << shard
               << " but the controller has no such mapping (missed "
               << "invalidation?)";
            r.fail(os.str());
          } else if (*truth != pgid) {
            std::ostringstream os;
            os << "cache maps (vni=" << key.vni << ", vgid=" << key.vgid.str()
               << ") on shard " << shard << " to " << pgid.str()
               << " but controller truth is " << truth->str();
            r.fail(os.str());
          }
        });
      });
}

void register_conntrack_auditor(InvariantRegistry& registry,
                                masq::Backend& backend) {
  registry.add_auditor(
      "conntrack[" + backend.device().config().name + "]",
      [&backend](InvariantRegistry::Reporter& r) {
        // A row referencing an ERROR'd QP is legal exactly while its purge
        // is scheduled but not yet drained by the loop.
        if (backend.pending_qp_purges() != 0) return;
        const rnic::RnicDevice& device = backend.device();
        backend.conntrack().for_each_entry(
            [&](const masq::RConntrack::Entry& e) {
              if (!device.qp_exists(e.qpn)) {
                std::ostringstream os;
                os << "RConntrack row (vni=" << e.vni << ", src="
                   << e.src_vip.str() << ", dst=" << e.dst_vip.str()
                   << ") references QP " << e.qpn
                   << " which no longer exists";
                r.fail(os.str());
              } else if (device.qp_state(e.qpn) == rnic::QpState::kError) {
                std::ostringstream os;
                os << "RConntrack row (vni=" << e.vni << ", src="
                   << e.src_vip.str() << ", dst=" << e.dst_vip.str()
                   << ") references QP " << e.qpn
                   << " in ERROR with no purge pending";
                r.fail(os.str());
              }
            });
      });
}

namespace {

std::uint64_t traced_run(
    const std::function<void(sim::EventLoop&)>& scenario) {
  sim::EventLoop loop;
  loop.enable_trace();
  scenario(loop);
  return loop.trace_hash();
}

}  // namespace

std::function<void(std::string_view, std::string_view, std::string)>
make_migration_reporter(InvariantRegistry& registry) {
  return [&registry](std::string_view invariant, std::string_view point,
                     std::string diagnostic) {
    registry.report_violation(std::string(invariant), point,
                              std::move(diagnostic));
  };
}

DeterminismResult run_twice(
    const std::function<void(sim::EventLoop&)>& scenario) {
  DeterminismResult result;
  result.first_hash = traced_run(scenario);
  result.second_hash = traced_run(scenario);
  return result;
}

void audit_determinism(InvariantRegistry& registry,
                       const std::function<void(sim::EventLoop&)>& scenario) {
  const DeterminismResult result = run_twice(scenario);
  if (result.identical()) return;
  std::ostringstream os;
  os << "two runs of the same (config, seed) diverged: trace hash 0x"
     << std::hex << result.first_hash << " vs 0x" << result.second_hash;
  registry.report_violation("determinism", "run-twice", os.str());
}

}  // namespace check
