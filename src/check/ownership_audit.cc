#include "check/ownership_audit.h"

#include <cassert>
#include <sstream>
#include <thread>
#include <utility>

namespace check {

namespace {

// Per-thread window context. One slot per thread is enough even with
// multiple auditors alive (tests): the owner field scopes the claim, and
// a thread runs at most one partition window at a time by construction.
struct ThreadCtx {
  const void* owner = nullptr;  // the auditor the claim belongs to
  std::size_t partition = 0;
  bool in_window = false;
};

thread_local ThreadCtx t_ctx;

std::string thread_name() {
  std::ostringstream os;
  os << std::this_thread::get_id();
  return os.str();
}

}  // namespace

PartitionOwnershipAuditor::PartitionOwnershipAuditor(
    sim::PartitionGroup& group, ViolationPolicy policy)
    : group_(group), policy_(policy) {
  loop_partition_.reserve(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    loop_partition_.emplace(&group.loop(i), i);
    group.loop(i).set_access_probe(this);
  }
  group.set_window_observer(this);
}

PartitionOwnershipAuditor::~PartitionOwnershipAuditor() {
  group_.set_window_observer(nullptr);
  for (std::size_t i = 0; i < group_.size(); ++i) {
    group_.loop(i).set_access_probe(nullptr);
  }
  if (t_ctx.owner == this) t_ctx = ThreadCtx{};
}

void PartitionOwnershipAuditor::tag_state(const void* object,
                                          std::string name,
                                          std::size_t partition) {
  assert(open_windows_.load(std::memory_order_acquire) == 0 &&
         "tag_state() must run during setup or at a barrier");
  tagged_[object] = StateTag{std::move(name), partition};
}

void PartitionOwnershipAuditor::note_state_access(const void* object) {
  auto it = tagged_.find(object);
  if (it == tagged_.end()) return;
  check_access(it->second.partition, it->second.name, "state-access", 0);
}

void PartitionOwnershipAuditor::on_loop_access(const sim::EventLoop& loop,
                                               const char* op) {
  auto it = loop_partition_.find(&loop);
  if (it == loop_partition_.end()) return;  // not one of ours
  std::ostringstream what;
  what << "EventLoop[" << it->second << "]";
  check_access(it->second, what.str(), op, loop.now());
}

void PartitionOwnershipAuditor::on_window_begin(std::size_t partition) {
  open_windows_.fetch_add(1, std::memory_order_acq_rel);
  t_ctx = ThreadCtx{this, partition, true};
}

void PartitionOwnershipAuditor::on_window_end(std::size_t partition) {
  (void)partition;
  t_ctx = ThreadCtx{this, partition, false};
  open_windows_.fetch_sub(1, std::memory_order_acq_rel);
}

std::vector<Violation> PartitionOwnershipAuditor::violations() const {
  std::lock_guard<std::mutex> lk(violations_mu_);
  return violations_;
}

void PartitionOwnershipAuditor::set_thread_context_for_test(
    std::size_t partition, bool in_window) {
  t_ctx = ThreadCtx{this, partition, in_window};
  if (in_window) open_windows_.fetch_add(1, std::memory_order_acq_rel);
}

void PartitionOwnershipAuditor::clear_thread_context_for_test() {
  if (t_ctx.owner == this && t_ctx.in_window) {
    open_windows_.fetch_sub(1, std::memory_order_acq_rel);
  }
  t_ctx = ThreadCtx{};
}

void PartitionOwnershipAuditor::check_access(std::size_t partition,
                                             const std::string& what,
                                             const char* op, sim::Time at) {
  accesses_.fetch_add(1, std::memory_order_relaxed);
  const ThreadCtx ctx = t_ctx;
  const bool has_ctx = ctx.owner == this && ctx.in_window;
  if (has_ctx && ctx.partition == partition) return;  // own window
  if (!has_ctx &&
      open_windows_.load(std::memory_order_acquire) == 0) {
    return;  // barrier phase: single-threaded coordinator
  }
  std::ostringstream diag;
  diag << what << " is owned by partition " << partition
       << " but was accessed (op=" << op << ") from thread "
       << thread_name();
  if (has_ctx) {
    diag << " while that thread runs partition " << ctx.partition
         << "'s window";
  } else {
    diag << " which holds no window context while "
         << open_windows_.load(std::memory_order_acquire)
         << " window(s) are open";
  }
  diag << "; cross-partition effects must go through the coordinator at "
          "the barrier";
  fail(Violation{"partition-ownership", op, at, diag.str()});
}

void PartitionOwnershipAuditor::fail(Violation v) {
  {
    std::lock_guard<std::mutex> lk(violations_mu_);
    violations_.push_back(v);
  }
  if (policy_ == ViolationPolicy::kThrow) {
    throw InvariantViolationError(v);
  }
}

}  // namespace check
